package worldgen

import "pinscope/internal/appmodel"

// This file holds every calibration constant of the generated world. The
// analysis pipelines never read these values — they parse packages and
// observe traffic — but the values are chosen so the *measured* results
// reproduce the shape of the paper's findings (see DESIGN.md §5 and
// EXPERIMENTS.md for paper-vs-measured numbers).

// Tier is the dataset segment an app was materialized for.
type Tier string

const (
	TierCommon  Tier = "common"
	TierPopular Tier = "popular"
	TierRandom  Tier = "random"
)

// dynPinRate is the probability that an app enforces pinning at run time,
// before category adjustment (Table 3, "Dynamic analysis" column). Common
// apps are governed by pair classes instead (see pairClassWeights).
var dynPinRate = map[appmodel.Platform]map[Tier]float64{
	appmodel.Android: {TierPopular: 0.067, TierRandom: 0.0075},
	appmodel.IOS:     {TierPopular: 0.122, TierRandom: 0.025},
}

// staticExtraRate is the probability that a NON-pinning app still embeds
// certificate or pin material (unused libraries, optional pinning support,
// disabled code paths). Together with pinning apps' material this produces
// the "Embedded Certificates" static column of Table 3.
// (The rates account for the cert-carrying SDKs already contributing
// material independently.)
var staticExtraRate = map[appmodel.Platform]map[Tier]float64{
	appmodel.Android: {TierCommon: 0.185, TierPopular: 0.086, TierRandom: 0.068},
	appmodel.IOS:     {TierCommon: 0.069, TierPopular: 0.148, TierRandom: 0.027},
}

// obfuscationRate is the fraction of pinning apps whose pin material is
// invisible to static analysis (obfuscated, reconstructed at run time) —
// one reason dynamic analysis is ground truth (§4.2).
const obfuscationRate = 0.08

// nscPinRate is the probability an Android pinning app declares its pins
// via a Network Security Configuration (the only mechanism prior NSC-based
// studies could see; Table 3 "Configuration Files" column).
var nscPinRate = map[Tier]float64{
	TierCommon: 0.25, TierPopular: 0.27, TierRandom: 0.5,
}

// nscPlainRate is the probability that any Android app ships an NSC without
// a pin-set (NSC adoption far exceeds NSC pinning; Oltrogge et al. found
// 7.43% adoption with <1% pinning).
const nscPlainRate = 0.06

// nscMisconfigRate: among NSC-pinning apps, the probability of shipping a
// Possemato-style misconfiguration (overridePins or placeholder domain).
const nscMisconfigRate = 0.12

// catPinMult scales pinning probability by store category. Keys are the
// per-platform category names; missing categories default to 1. Values are
// normalized at build time so the tier average stays at dynPinRate.
var catPinMult = map[string]float64{
	// Shared names.
	"Finance": 2.9, "Shopping": 2.1, "Travel": 1.4, "Food & Drink": 1.9,
	"Weather": 0.95, "Sports": 1.1, "Music": 0.5, "Entertainment": 0.6,
	"News": 0.8, "Business": 0.6, "Education": 0.35, "Books": 1.0,
	"Lifestyle": 1.15, "Productivity": 0.7, "Games": 0.12,
	// Android names.
	"Social": 2.5, "Events": 2.2, "Dating": 2.1, "Comics": 1.9,
	"Automobile": 1.3, "Tools": 0.5, "Photography": 1.0, "Communication": 0.9,
	"Health": 0.8, "Personalization": 0.4, "Maps": 1.0, "Video Players": 0.5,
	"House": 0.8, "Parenting": 0.7, "Art": 0.5, "Beauty": 0.7, "Libraries": 0.4,
	// iOS names.
	"Social Networking": 2.3, "Photo & Video": 1.85, "Utilities": 0.95,
	"Health & Fitness": 0.85, "Navigation": 1.25, "Medical": 0.9,
	"Reference": 0.6, "Magazines": 0.5, "Catalogs": 0.5,
}

// pairClass encodes the cross-platform pinning behaviour of a common app
// (Figure 2/3/4). Weights are per-575 counts from §5.1.
type pairClass int

const (
	pairNeither pairClass = iota
	pairBothIdentical
	pairBothSubset
	pairBothInconsistent
	pairBothInconclusive
	pairAndroidOnlyInconsistent
	pairAndroidOnlyInconclusive
	pairIOSOnlyInconsistent
	pairIOSOnlyInconclusive
)

var pairClassWeights = []struct {
	class pairClass
	w     float64 // expected count per 575 common apps
}{
	{pairBothIdentical, 13},
	{pairBothSubset, 2},
	{pairBothInconsistent, 6},
	{pairBothInconclusive, 6},
	{pairAndroidOnlyInconsistent, 10},
	{pairAndroidOnlyInconclusive, 10},
	{pairIOSOnlyInconsistent, 7},
	{pairIOSOnlyInconclusive, 15},
	{pairNeither, 575 - 69},
}

// Pin-material composition (§5.3).
const (
	// caPinRate: fraction of first-party pin configurations that pin a CA
	// certificate rather than the leaf. Together with SDK pins (see
	// sdkCAPinRate) the matched-certificate CA share lands near the
	// paper's ≈73% (80/110).
	caPinRate = 0.52
	// sdkCAPinRate is the CA-pin fraction for SDK pin sets.
	sdkCAPinRate = 0.62
	// spkiPinRate: among leaf pins, the fraction expressed as SPKI hashes
	// rather than raw certificates (24/30).
	spkiPinRate = 0.80
	// rawCertStrictRate: among raw-cert embeddings, the fraction whose
	// runtime check really requires the exact certificate (1 of 6 in the
	// paper; the rest effectively pin the public key).
	rawCertStrictRate = 0.16
	// sha1PinRate / hexPinRate: presentation diversity of pin strings.
	sha1PinRate = 0.08
	hexPinRate  = 0.10
	// leafRotationRate: pinned first-party leaves reissued (key reused)
	// between app release and our dynamic tests (§5.3.3).
	leafRotationRate = 0.20
)

// Pinned-destination infrastructure (Table 6).
const (
	// customPKIRate*: pinning apps whose own pinned domain uses a private
	// CA (4/178 Android, 1/253 iOS destinations).
	customPKIRateAndroid = 0.030
	customPKIRateIOS     = 0.006
	// selfSignedRate: pinned destinations serving a bare self-signed cert
	// (one per platform in the paper).
	selfSignedRate = 0.015
	// flakyHostRate: pinned destinations unreachable by the time of the
	// chain probe ("Data Unavailable": 11/178, 14/253).
	flakyHostRate = 0.10
)

// pinFailureModeWeights: how pinned clients fail on the wire (§4.2.2 lists
// alerts, resets, and established-but-unused connections).
var pinFailureModeWeights = []float64{0.55, 0.25, 0.20} // alert+fin, rst, silent-idle

// First-party TLS stack mixes. SDK connections use the SDK's own stack;
// these govern the app's own connections. The pinned mix determines
// circumvention rates (§4.3: ≈51.5% Android, ≈66.2% iOS destinations).
var fpLibMix = map[appmodel.Platform]map[appmodel.TLSLib]float64{
	appmodel.Android: {
		appmodel.LibOkHttp: 0.55, appmodel.LibConscrypt: 0.25,
		appmodel.LibWebView: 0.05, appmodel.LibFlutterBoring: 0.08,
		appmodel.LibCustomNative: 0.07,
	},
	appmodel.IOS: {
		appmodel.LibNSURLSession: 0.62, appmodel.LibAFNetworking: 0.15,
		appmodel.LibTrustKit: 0.08, appmodel.LibFlutterBoring: 0.08,
		appmodel.LibCustomNative: 0.07,
	},
}

var fpPinnedLibMix = map[appmodel.Platform]map[appmodel.TLSLib]float64{
	appmodel.Android: {
		appmodel.LibOkHttp: 0.26, appmodel.LibConscrypt: 0.04,
		appmodel.LibWebView: 0.02, appmodel.LibFlutterBoring: 0.27,
		appmodel.LibCustomNative: 0.41,
	},
	appmodel.IOS: {
		appmodel.LibNSURLSession: 0.32, appmodel.LibTrustKit: 0.16,
		appmodel.LibAFNetworking: 0.03, appmodel.LibFlutterBoring: 0.18,
		appmodel.LibCustomNative: 0.31,
	},
}

// Weak-cipher advertisement (Table 8). These are app-level behaviours:
// weakGenericRate is the probability an app's general-purpose stack offers
// weak suites (nearly all iOS stacks of the study era did — legacy
// SecureTransport defaults); weakPinnedRate is the probability a pinning
// app's PINNED connections offer them. Note the paper's Android-Common
// inversion (pinned connections weaker than the dataset overall).
var weakGenericRate = map[appmodel.Platform]map[Tier]float64{
	appmodel.Android: {TierCommon: 0.0835, TierPopular: 0.183, TierRandom: 0.031},
	appmodel.IOS:     {TierCommon: 0.9339, TierPopular: 0.952, TierRandom: 0.826},
}

var weakPinnedRate = map[appmodel.Platform]map[Tier]float64{
	appmodel.Android: {TierCommon: 0.234, TierPopular: 0.0149, TierRandom: 0.0},
	appmodel.IOS:     {TierCommon: 0.5577, TierPopular: 0.4609, TierRandom: 0.5294},
}

// TLS version mix for app connections.
var versionMixWeights = []float64{0.68, 0.27, 0.05} // TLS13, TLS12, TLS11

// Behaviour-plan shape (§4.2.1's sleep sweep: ~20.8/23.5/24.6 handshakes at
// 15/30/60 s).
const (
	miscDomainsMean   = 11.0 // shared third-party infrastructure contacted
	miscDomainsSpread = 3.5
	miscDomainsMin    = 4
	miscDomainsMax    = 22
	redundantConnRate = 0.30 // extra never-used connection per destination
	fpExtraConnRate   = 0.45 // second connection to a first-party host
	lateConnRate      = 0.25 // probability of a tail (30–60 s) connection
	usedConnRate      = 0.90 // a planned primary connection transmits data
)

// Arrival-time buckets: most handshakes land early.
var arrivalBuckets = []struct {
	w        float64
	min, max float64
}{
	{0.72, 0, 10},
	{0.18, 10, 30},
	{0.10, 30, 60},
}

// sdkTierMult scales SDK inclusion probability per tier (popular apps carry
// more third-party code).
var sdkTierMult = map[Tier]float64{TierCommon: 1.3, TierPopular: 1.4, TierRandom: 0.6}

// First-party pinning shape (Figure 5).
const (
	// pinMechanismFirstParty / Both: given a pinning app, which code pins.
	// The remainder is third-party-SDK-only pinning — the dominant case.
	pinMechanismFirstParty = 0.22
	pinMechanismBoth       = 0.10
	// androidPinAllFPRate: Android apps that pin first parties pin ALL of
	// them (the paper found a single exception); iOS frequently pins only a
	// subset.
	androidPinAllFPRate = 0.97
	iosPinAllFPRate     = 0.68
	// sdkOnlyNoFPRate: SDK-only pinning apps frequently contact no
	// developer-owned domain at all (pure-SDK apps). This is what makes
	// "Android apps that contact first parties pin them" hold in Figure 5.
	sdkOnlyNoFPRateAndroid = 0.97
	sdkOnlyNoFPRateIOS     = 0.80
	// pinEverythingRate: rare apps pin every destination they contact
	// (5 Android, 4 iOS in the paper).
	pinEverythingRate = 0.05
)

// PII emission (Table 9). Pinned destinations skew toward advertising IDs
// (analytics/fraud SDKs pin and fingerprint); the non-pinned background is
// tamer per destination. The iOS skew is stronger, which is what makes the
// difference statistically significant there and not on Android.
const (
	fpEmailRate    = 0.012
	fpStateRate    = 0.010
	fpCityRate     = 0.008
	fpGeoRate      = 0.004
	cdnAdIDRate    = 0.04
	adPoolAdIDRate = 0.22
	// fpPinnedAdIDRate: apps send the advertising ID to their own pinned
	// backends too (attribution postbacks).
	fpPinnedAdIDRateAndroid = 0.30
	fpPinnedAdIDRateIOS     = 0.26
	pinnedAdIDBoostAndroid  = 1.5
	pinnedAdIDBoostIOS      = 1.45
)

// iOS associated domains (§4.5: 66% of apps declare none; the rest average
// 4.8 unique domains).
const (
	assocDomainRate = 0.34
	assocDomainMin  = 2
	assocDomainMax  = 8
)

// whoisPrivateRate: registrations hidden behind WHOIS privacy, forcing the
// analyst's name-token fallback.
const whoisPrivateRate = 0.12

// serverResetRate: shared third-party hosts that reset connections during
// the study (a non-pinning failure confounder).
const serverResetRate = 0.01

// nativeLibRate: Android apps shipping a native library whose strings are
// scanned radare2-style.
const nativeLibRate = 0.18
