// Package worldgen deterministically generates the study's complete world:
// the PKI ecosystem, destination servers with real certificate chains, the
// whois registry, both app stores with their datasets, and every
// materialized app (package bytes + runtime behaviour). All calibration
// constants live in params.go; the analysis pipelines never see them.
package worldgen

import (
	"crypto/x509"
	"fmt"
	"sort"
	"strings"

	"pinscope/internal/appmodel"
	"pinscope/internal/appstore"
	"pinscope/internal/ctlog"
	"pinscope/internal/detrand"
	"pinscope/internal/netem"
	"pinscope/internal/pki"
	"pinscope/internal/rootprogram"
	"pinscope/internal/sdkregistry"
	"pinscope/internal/tlswire"
	"pinscope/internal/whois"
)

// Params sizes the generated world.
type Params struct {
	Seed int64
	// Dataset sizes per platform.
	CommonSize, PopularSize, RandomSize int
	// Store population sizes (scaled stand-ins for the ~1.3M real stores).
	StoreAndroid, StoreIOS int
	// CrossProducts is the number of products listed on both stores.
	CrossProducts int
	// PopularCut is the store rank below which the popular category mix
	// applies.
	PopularCut int
}

// DefaultParams reproduces the paper's dataset sizes (§3).
func DefaultParams() Params {
	return Params{
		Seed:       20221025, // IMC'22 opening day
		CommonSize: 575, PopularSize: 1000, RandomSize: 1000,
		StoreAndroid: 42000, StoreIOS: 39000,
		CrossProducts: 700, PopularCut: 12000,
	}
}

// TestParams is a CI-friendly miniature world.
func TestParams(seed int64) Params {
	return Params{
		Seed:       seed,
		CommonSize: 60, PopularSize: 100, RandomSize: 100,
		StoreAndroid: 4200, StoreIOS: 3900,
		CrossProducts: 80, PopularCut: 1200,
	}
}

// HostKind labels destination hosts for payload/PII synthesis.
type HostKind string

const (
	KindFirstParty HostKind = "first-party"
	KindSDK        HostKind = "sdk"
	KindCDN        HostKind = "cdn"
	KindAds        HostKind = "ads"
	KindMetrics    HostKind = "metrics"
	KindAPI        HostKind = "api"
	KindApple      HostKind = "apple"
)

// HostInfo is one destination server.
type HostInfo struct {
	Host string
	Kind HostKind
	Org  string

	Chain      pki.Chain
	Leaf       *pki.Entity
	SelfSigned bool
	CustomPKI  bool
	// CustomRoot is the private trust anchor for CustomPKI/SelfSigned
	// hosts (what the owning app's client trusts).
	CustomRoot *x509.Certificate

	// OriginalLeaf is the pre-rotation leaf (what shipped apps embedded);
	// nil when no rotation happened.
	OriginalLeaf *x509.Certificate

	// Flaky hosts go offline before the chain-probe phase (Table 6's
	// "Data Unavailable").
	Flaky bool
	// ResetOnAccept hosts abort every connection (a failure confounder).
	ResetOnAccept bool
}

// Datasets groups the six study datasets.
type Datasets struct {
	CommonAndroid, CommonIOS   *appstore.Dataset
	PopularAndroid, PopularIOS *appstore.Dataset
	RandomAndroid, RandomIOS   *appstore.Dataset
}

// All returns the datasets in canonical report order.
func (d *Datasets) All() []*appstore.Dataset {
	return []*appstore.Dataset{
		d.CommonAndroid, d.CommonIOS,
		d.PopularAndroid, d.PopularIOS,
		d.RandomAndroid, d.RandomIOS,
	}
}

// CommonPair is a common app materialized on both platforms.
type CommonPair struct {
	Name    string
	Android *appmodel.App
	IOS     *appmodel.App
	// TruthClass records the generated consistency class (tests only).
	TruthClass string
}

// World is the fully generated study environment.
type World struct {
	Params Params

	Eco   *pki.Ecosystem
	CT    *ctlog.Log
	Whois *whois.Registry
	// Timeline is the versioned root-program axis: platform release lines
	// plus the distrust-event stream. Derived from the same seed as Eco,
	// so a given world always carries the same timeline.
	Timeline *rootprogram.Timeline

	StoreAndroid, StoreIOS *appstore.Store
	DS                     Datasets

	Hosts       map[string]*HostInfo
	CommonPairs []*CommonPair

	apps      map[string]*appmodel.App // key: platform + "/" + listing ID
	usedSlugs map[string]bool
	// pool is the shared third-party host pool in creation order.
	pool []*HostInfo
	rng  *detrand.Source
	// sdkPins caches the runtime pin set per pinning SDK (one per SDK, as
	// a shipped SDK version pins one way everywhere).
	sdkPins map[string]*pki.PinSet
}

// Build generates the world. It is deterministic in Params.
func Build(p Params) (*World, error) {
	rng := detrand.New(p.Seed)
	eco, err := pki.BuildEcosystem(rng.Child("pki"))
	if err != nil {
		return nil, err
	}
	// Child streams derive without advancing the parent, so adding the
	// timeline leaves every pre-existing draw untouched.
	tl, err := rootprogram.BuildTimeline(rng.Child("rootprogram"), eco)
	if err != nil {
		return nil, err
	}
	w := &World{
		Params:    p,
		Eco:       eco,
		Timeline:  tl,
		CT:        ctlog.New(),
		Whois:     whois.NewRegistry(),
		Hosts:     make(map[string]*HostInfo),
		apps:      make(map[string]*appmodel.App),
		usedSlugs: make(map[string]bool),
		sdkPins:   make(map[string]*pki.PinSet),
		rng:       rng,
	}

	w.StoreAndroid, w.StoreIOS = appstore.Generate(appstore.GenConfig{
		Rng:           rng.Child("stores"),
		AndroidSize:   p.StoreAndroid,
		IOSSize:       p.StoreIOS,
		CrossProducts: p.CrossProducts,
		PopularCut:    p.PopularCut,
	})

	crawl := rng.Child("crawl")
	w.DS.CommonAndroid, w.DS.CommonIOS = appstore.CrawlCommon(w.StoreAndroid, w.StoreIOS, p.CommonSize)
	w.DS.PopularAndroid = appstore.CrawlPopularAndroid(w.StoreAndroid, crawl.Child("pa"), p.PopularSize)
	w.DS.PopularIOS = appstore.CrawlPopularIOS(w.StoreIOS, crawl.Child("pi"), p.PopularSize)
	w.DS.RandomAndroid = appstore.CrawlRandom(w.StoreAndroid, crawl.Child("ra"), p.RandomSize)
	w.DS.RandomIOS = appstore.CrawlRandom(w.StoreIOS, crawl.Child("ri"), p.RandomSize)

	if err := w.buildInfrastructure(); err != nil {
		return nil, err
	}
	if err := w.materializeCommonPairs(); err != nil {
		return nil, err
	}
	if err := w.materializeDataset(w.DS.PopularAndroid, TierPopular); err != nil {
		return nil, err
	}
	if err := w.materializeDataset(w.DS.PopularIOS, TierPopular); err != nil {
		return nil, err
	}
	if err := w.materializeDataset(w.DS.RandomAndroid, TierRandom); err != nil {
		return nil, err
	}
	if err := w.materializeDataset(w.DS.RandomIOS, TierRandom); err != nil {
		return nil, err
	}
	return w, nil
}

// App returns the materialized app for a listing, or nil.
func (w *World) App(l *appstore.Listing) *appmodel.App {
	return w.apps[string(l.Platform)+"/"+l.ID]
}

// Apps returns the materialized apps of a dataset, in listing order.
func (w *World) Apps(d *appstore.Dataset) []*appmodel.App {
	out := make([]*appmodel.App, 0, len(d.Listings))
	for _, l := range d.Listings {
		if a := w.App(l); a != nil {
			out = append(out, a)
		}
	}
	return out
}

// --- host management -------------------------------------------------------

// addPublicHost creates a destination with a public-PKI chain, registers
// whois and submits the chain to the CT log.
func (w *World) addPublicHost(host string, kind HostKind, org string, private bool) (*HostInfo, error) {
	if h, ok := w.Hosts[host]; ok {
		return h, nil
	}
	rng := w.rng.Child("host/" + host)
	chain, leaf, err := w.Eco.IssuePublicChain(rng, host, pki.LeafOptions{})
	if err != nil {
		return nil, fmt.Errorf("worldgen: host %s: %w", host, err)
	}
	h := &HostInfo{Host: host, Kind: kind, Org: org, Chain: chain, Leaf: leaf}
	w.Hosts[host] = h
	w.CT.SubmitChain(chain)
	w.Whois.Register(whois.Record{Domain: host, Org: org, Private: private})
	return h, nil
}

// addCustomHost creates a destination anchored in a private CA.
func (w *World) addCustomHost(host, org string) (*HostInfo, error) {
	rng := w.rng.Child("host/" + host)
	root, inter, err := w.Eco.NewCustomPKI(rng, org)
	if err != nil {
		return nil, err
	}
	leaf, err := inter.IssueLeaf(rng, host, pki.LeafOptions{})
	if err != nil {
		return nil, err
	}
	h := &HostInfo{
		Host: host, Kind: KindFirstParty, Org: org,
		Chain: pki.Chain{leaf.Cert, inter.Cert, root.Cert}, Leaf: leaf,
		CustomPKI: true, CustomRoot: root.Cert,
	}
	w.Hosts[host] = h
	w.Whois.Register(whois.Record{Domain: host, Org: org})
	return h, nil
}

// addSelfSignedHost creates a destination serving a bare self-signed
// certificate with an implausibly long validity (§5.3.1 found 27y and 10y).
func (w *World) addSelfSignedHost(host, org string, validYears int) (*HostInfo, error) {
	rng := w.rng.Child("host/" + host)
	leaf, err := pki.NewSelfSigned(rng, host, validYears)
	if err != nil {
		return nil, err
	}
	h := &HostInfo{
		Host: host, Kind: KindFirstParty, Org: org,
		Chain: pki.Chain{leaf.Cert}, Leaf: leaf,
		SelfSigned: true, CustomRoot: leaf.Cert,
	}
	w.Hosts[host] = h
	w.Whois.Register(whois.Record{Domain: host, Org: org})
	return h, nil
}

// rotateLeaf reissues the host's leaf with the same key pair, keeping the
// original for §5.3.3 comparisons. Only valid for public-PKI hosts.
func (w *World) rotateLeaf(h *HostInfo) error {
	// Reissue from the same intermediate that signed the current leaf.
	rng := w.rng.Child("rotate/" + h.Host)
	if len(h.Chain) < 2 {
		return fmt.Errorf("worldgen: cannot rotate chain of length %d", len(h.Chain))
	}
	var issuer *pki.Authority
	for _, a := range w.Eco.Intermediates {
		if a.Cert.Equal(h.Chain[1]) {
			issuer = a
			break
		}
	}
	if issuer == nil {
		return fmt.Errorf("worldgen: issuer of %s not found", h.Host)
	}
	newLeaf, err := issuer.ReissueLeaf(rng, h.Leaf, pki.LeafOptions{
		NotBefore: pki.StudyEpoch.AddDate(0, -1, 0),
		NotAfter:  pki.StudyEpoch.AddDate(0, 11, 0),
	})
	if err != nil {
		return err
	}
	h.OriginalLeaf = h.Leaf.Cert
	h.Leaf = newLeaf
	h.Chain = pki.Chain{newLeaf.Cert, h.Chain[1], h.Chain[2]}
	w.CT.Submit(newLeaf.Cert)
	return nil
}

// buildInfrastructure creates the shared destination universe: SDK hosts,
// the generic third-party pool, and Apple's service domains.
func (w *World) buildInfrastructure() error {
	// SDK destinations (sorted for deterministic creation order).
	orgDomains := sdkregistry.OrgDomains()
	domains := make([]string, 0, len(orgDomains))
	for d := range orgDomains {
		domains = append(domains, d)
	}
	sort.Strings(domains)
	for _, d := range domains {
		if _, err := w.addPublicHost(d, KindSDK, orgDomains[d], false); err != nil {
			return err
		}
	}
	// Runtime pin sets for pinning SDKs: each SDK pins one way globally.
	for _, plat := range appmodel.Platforms {
		for _, sdk := range sdkregistry.PinningSDKs(plat) {
			if len(sdk.PinnedDomains) == 0 {
				continue
			}
			key := string(plat) + "/" + sdk.Name
			rng := w.rng.Child("sdkpin/" + key)
			ps := &pki.PinSet{}
			for _, d := range sdk.PinnedDomains {
				h := w.Hosts[d]
				// SDKs mostly pin the issuing CA (§5.3.2).
				target := h.Chain[1]
				if !rng.Bool(sdkCAPinRate) {
					target = h.Chain.Leaf()
				}
				ps.Pins = append(ps.Pins, pki.NewPin(target, pki.SHA256))
			}
			w.sdkPins[key] = ps
		}
	}

	// Generic third-party pool.
	mkPool := func(prefix, domain string, kind HostKind, org string, n int) error {
		for i := 0; i < n; i++ {
			host := fmt.Sprintf("%s%d.%s", prefix, i, domain)
			h, err := w.addPublicHost(host, kind, fmt.Sprintf("%s %d", org, i%7), false)
			if err != nil {
				return err
			}
			if w.rng.Child("flk/" + host).Bool(serverResetRate) {
				h.ResetOnAccept = true
			}
			w.pool = append(w.pool, h)
		}
		return nil
	}
	if err := mkPool("cdn", "webinfra-cache.net", KindCDN, "EdgeCache Networks", 50); err != nil {
		return err
	}
	if err := mkPool("static", "contentcache.com", KindCDN, "ContentCache", 30); err != nil {
		return err
	}
	if err := mkPool("ads", "adnet-exchange.com", KindAds, "AdNet Exchange", 45); err != nil {
		return err
	}
	if err := mkPool("track", "telemetrics.io", KindMetrics, "Telemetrics", 35); err != nil {
		return err
	}
	if err := mkPool("api", "cloudbackend.dev", KindAPI, "CloudBackend", 40); err != nil {
		return err
	}

	// Apple service domains (iOS background traffic, §4.5).
	for _, d := range []string{"icloud.com", "apple.com", "mzstatic.com"} {
		if _, err := w.addPublicHost(d, KindApple, "Apple Inc", false); err != nil {
			return err
		}
	}
	return nil
}

// InstallServers registers every host's handler on a network. Workers call
// this on private netem instances so app runs can proceed in parallel.
// When includeFlaky is false, flaky hosts are absent (the probe-phase
// network).
func (w *World) InstallServers(n *netem.Network, includeFlaky bool) {
	for _, h := range w.Hosts {
		if h.Flaky && !includeFlaky {
			continue
		}
		host := h
		// Real 1.3 servers hand out a ticket or two after the handshake —
		// more disguised records for the detector to tolerate.
		tickets := 1 + len(host.Host)%2
		n.Listen(h.Host, func(tr tlswire.Transport) {
			tlswire.Serve(tr, &tlswire.ServerConfig{
				Chain:          host.Chain,
				ResetOnAccept:  host.ResetOnAccept,
				SessionTickets: tickets,
			})
		})
	}
}

// NewNetwork builds a ready network with all servers installed.
func (w *World) NewNetwork(includeFlaky bool) *netem.Network {
	n := netem.New()
	w.InstallServers(n, includeFlaky)
	return n
}

// slugFor reserves a unique DNS-safe brand slug for an app name.
func (w *World) slugFor(name, id string) string {
	base := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		}
		return -1
	}, name)
	if base == "" {
		base = "app"
	}
	s := base
	if w.usedSlugs[s] {
		s = fmt.Sprintf("%s-%08x", base, w.rng.Child("slug/"+id).Uint64()&0xffffffff)
	}
	w.usedSlugs[s] = true
	return s
}
