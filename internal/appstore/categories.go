package appstore

import "pinscope/internal/appmodel"

// Category distributions per platform and popularity segment, calibrated to
// Table 1 of the paper. Percentages are weights; each list carries a tail of
// less-common categories so datasets contain ~25-35 distinct categories,
// matching the category ranks reported alongside Tables 4 and 5.

// catWeight pairs a category with its sampling weight.
type catWeight struct {
	Name   string
	Weight float64
}

var androidPopularMix = []catWeight{
	{"Games", 36}, {"Weather", 2.4}, {"Finance", 2.3}, {"Shopping", 2.3},
	{"Entertainment", 2.2}, {"Food & Drink", 2.2}, {"Social", 2.2},
	{"Productivity", 2.1}, {"Photography", 2.1}, {"Music", 2.0},
	{"Tools", 1.9}, {"Travel", 1.9}, {"Communication", 1.8}, {"Sports", 1.8},
	{"Health", 1.7}, {"Education", 1.7}, {"Lifestyle", 1.6}, {"Business", 1.5},
	{"Video Players", 1.5}, {"News", 1.4}, {"Books", 1.3}, {"Maps", 1.2},
	{"Personalization", 1.2}, {"Dating", 1.0}, {"Automobile", 0.9},
	{"House", 0.8}, {"Events", 0.7}, {"Parenting", 0.6}, {"Art", 0.6},
	{"Comics", 0.5}, {"Beauty", 0.5}, {"Libraries", 0.4},
}

var androidRandomMix = []catWeight{
	{"Education", 12}, {"Games", 12}, {"Tools", 6.5}, {"Music", 6.2},
	{"Books", 6.0}, {"Business", 5.5}, {"Lifestyle", 5.2},
	{"Entertainment", 4.5}, {"Travel", 4.2}, {"Personalization", 4.0},
	{"Productivity", 3.5}, {"Health", 3.2}, {"Shopping", 2.8},
	{"Food & Drink", 2.6}, {"Sports", 2.4}, {"Finance", 2.2},
	{"Communication", 2.0}, {"Social", 1.9}, {"News", 1.8}, {"Photography", 1.7},
	{"Maps", 1.5}, {"Weather", 1.2}, {"Video Players", 1.2}, {"Automobile", 1.0},
	{"House", 0.9}, {"Dating", 0.8}, {"Events", 0.7}, {"Parenting", 0.6},
	{"Art", 0.6}, {"Comics", 0.5}, {"Beauty", 0.5}, {"Libraries", 0.4},
}

var androidCommonMix = []catWeight{
	{"Games", 18}, {"Productivity", 12}, {"Business", 7.2},
	{"Communication", 6.4}, {"Finance", 6.0}, {"Education", 5.4},
	{"Social", 5.0}, {"Health", 4.2}, {"Travel", 3.4}, {"Lifestyle", 3.2},
	{"Tools", 3.0}, {"Music", 2.8}, {"Photography", 2.7}, {"Shopping", 2.5},
	{"Entertainment", 2.4}, {"News", 2.2}, {"Food & Drink", 2.0},
	{"Sports", 1.8}, {"Books", 1.6}, {"Maps", 1.4}, {"Weather", 1.2},
	{"Video Players", 1.0}, {"Dating", 0.9}, {"Automobile", 0.8},
	{"Events", 0.7}, {"Comics", 0.5}, {"Beauty", 0.4},
}

var iosPopularMix = []catWeight{
	{"Games", 21}, {"Photo & Video", 11}, {"Social Networking", 6.4},
	{"Education", 6.2}, {"Finance", 6.0}, {"Lifestyle", 5.2},
	{"Entertainment", 4.4}, {"Utilities", 4.2}, {"Productivity", 4.0},
	{"Weather", 3.8}, {"Shopping", 3.4}, {"Health & Fitness", 3.2},
	{"Travel", 3.0}, {"Food & Drink", 2.8}, {"Music", 2.6}, {"Sports", 2.4},
	{"News", 2.2}, {"Business", 2.0}, {"Books", 1.8}, {"Navigation", 1.4},
	{"Medical", 1.2}, {"Reference", 1.0}, {"Magazines", 0.8}, {"Catalogs", 0.4},
}

var iosRandomMix = []catWeight{
	{"Games", 15}, {"Business", 11}, {"Education", 11}, {"Food & Drink", 7.2},
	{"Lifestyle", 7.0}, {"Utilities", 6.2}, {"Entertainment", 4.4},
	{"Health & Fitness", 4.2}, {"Travel", 4.0}, {"Shopping", 3.4},
	{"Productivity", 3.2}, {"Sports", 3.0}, {"Music", 2.8},
	{"Photo & Video", 2.6}, {"Social Networking", 2.4}, {"Finance", 2.2},
	{"News", 2.0}, {"Books", 1.8}, {"Medical", 1.6}, {"Navigation", 1.4},
	{"Reference", 1.2}, {"Weather", 1.0}, {"Magazines", 0.8}, {"Catalogs", 0.4},
}

var iosCommonMix = []catWeight{
	{"Games", 18}, {"Productivity", 14}, {"Business", 8.2},
	{"Social Networking", 7.0}, {"Education", 6.2}, {"Finance", 6.0},
	{"Utilities", 5.2}, {"Photo & Video", 4.4}, {"Health & Fitness", 3.4},
	{"Lifestyle", 3.2}, {"Music", 3.0}, {"Travel", 2.8}, {"Shopping", 2.6},
	{"Entertainment", 2.4}, {"News", 2.2}, {"Food & Drink", 2.0},
	{"Sports", 1.8}, {"Books", 1.6}, {"Weather", 1.4}, {"Navigation", 1.2},
	{"Medical", 1.0}, {"Reference", 0.8}, {"Magazines", 0.6},
}

// segment identifies which category mix applies to a listing.
type segment int

const (
	segPopular segment = iota
	segRandom
	segCommon
)

func categoryMix(p appmodel.Platform, s segment) []catWeight {
	if p == appmodel.Android {
		switch s {
		case segPopular:
			return androidPopularMix
		case segCommon:
			return androidCommonMix
		default:
			return androidRandomMix
		}
	}
	switch s {
	case segPopular:
		return iosPopularMix
	case segCommon:
		return iosCommonMix
	default:
		return iosRandomMix
	}
}

// ITunesSearchCategories are the "19 generic category names" the paper used
// as iTunes Search API terms to assemble the popular iOS set (§3).
var ITunesSearchCategories = []string{
	"Games", "Photo & Video", "Social Networking", "Education", "Finance",
	"Lifestyle", "Entertainment", "Utilities", "Productivity", "Weather",
	"Shopping", "Health & Fitness", "Travel", "Food & Drink", "Music",
	"Sports", "News", "Business", "Books",
}
