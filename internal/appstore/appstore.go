// Package appstore simulates the two official mobile app stores and the
// crawlers the paper used to assemble its datasets (§3): GPlayCLI-style
// "Top Free" crawls for popular Android apps, iTunes-Search-API sampling
// for popular iOS apps, random draws from full app-ID lists, and the
// AlternativeTo cross-listing walk that yields the Common dataset.
//
// Store populations are generated deterministically with category mixes
// calibrated to Table 1; population size is a scale knob (the real stores
// hold ~1.3M listings, which would be pure memory ballast here).
package appstore

import (
	"fmt"
	"sort"
	"strings"

	"pinscope/internal/appmodel"
	"pinscope/internal/detrand"
)

// Listing is one store entry (metadata only; packages are materialized
// later, when an app enters a dataset).
type Listing struct {
	ID        string
	Name      string
	Developer string
	Platform  appmodel.Platform
	Category  string
	// Rank is the store popularity rank, 1 = most popular.
	Rank int
	// CrossKey links listings of the same product across stores ("" when
	// single-platform).
	CrossKey string
	Free     bool
}

// Store is one platform's app market.
type Store struct {
	Platform appmodel.Platform
	listings []*Listing // index i holds rank i+1
	byID     map[string]*Listing
}

// Listings returns all listings in rank order.
func (s *Store) Listings() []*Listing { return s.listings }

// Len returns the number of listings.
func (s *Store) Len() int { return len(s.listings) }

// ByID returns the listing with the given ID.
func (s *Store) ByID(id string) *Listing { return s.byID[id] }

// Top returns the n highest-ranked listings.
func (s *Store) Top(n int) []*Listing {
	if n > len(s.listings) {
		n = len(s.listings)
	}
	return s.listings[:n]
}

// GenConfig parameterizes world store generation.
type GenConfig struct {
	Rng *detrand.Source
	// AndroidSize and IOSSize are total listing counts per store.
	AndroidSize, IOSSize int
	// CrossProducts is the number of products listed on both stores.
	CrossProducts int
	// PopularCut is the rank boundary below which listings draw from the
	// popular category mix (the head of the store looks different from the
	// long tail, per Table 1).
	PopularCut int
}

// nameParts for synthetic app naming. Combinations give ~10^6 distinct
// names before numbering kicks in.
var (
	nameAdj  = []string{"Swift", "Smart", "Daily", "Super", "Pocket", "Magic", "Easy", "Pro", "Happy", "Tiny", "Mega", "Quick", "Bright", "Zen", "Prime", "Ultra", "Micro", "Star", "Cloud", "Hyper"}
	nameNoun = []string{"Recipe", "Budget", "Fit", "Chat", "Photo", "Task", "Note", "Game", "Quiz", "Market", "Wallet", "Map", "Ride", "News", "Music", "Scan", "Craft", "Garden", "Puzzle", "Tracker", "Diary", "Coach", "Radar", "Board", "Deck"}
	nameSuf  = []string{"", " Pro", " Lite", " Plus", " Go", " Now", " HD", " 2", " X", " Hub"}
	devWords = []string{"Apps", "Labs", "Works", "Studio", "Soft", "Mobile", "Digital", "Interactive", "Media", "Systems"}
)

func slug(s string) string {
	s = strings.ToLower(s)
	var b strings.Builder
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		}
	}
	if b.Len() == 0 {
		return "app"
	}
	return b.String()
}

// product is generator-internal: one app product possibly listed on both
// stores.
type product struct {
	name, developer, crossKey string
	category                  map[appmodel.Platform]string
}

func newProduct(rng *detrand.Source, n int, mixSeg segment, cross bool) *product {
	name := detrand.Pick(rng, nameAdj) + " " + detrand.Pick(rng, nameNoun) + detrand.Pick(rng, nameSuf)
	if rng.Bool(0.35) {
		name = fmt.Sprintf("%s %d", name, 2+rng.Intn(98))
	}
	dev := detrand.Pick(rng, nameNoun) + " " + detrand.Pick(rng, devWords)
	p := &product{
		name:      name,
		developer: dev,
		category:  make(map[appmodel.Platform]string),
	}
	if cross {
		p.crossKey = fmt.Sprintf("x%06d", n)
	}
	for _, plat := range appmodel.Platforms {
		mix := categoryMix(plat, mixSeg)
		weights := make([]float64, len(mix))
		for i, cw := range mix {
			weights[i] = cw.Weight
		}
		p.category[plat] = mix[rng.WeightedIndex(weights)].Name
	}
	return p
}

func (p *product) listing(plat appmodel.Platform, seq int) *Listing {
	id := fmt.Sprintf("com.%s.%s", slug(p.developer), slug(p.name))
	if plat == appmodel.IOS {
		id = fmt.Sprintf("id%09d", 280000000+seq)
	}
	return &Listing{
		ID:        id,
		Name:      p.name,
		Developer: p.developer,
		Platform:  plat,
		Category:  p.category[plat],
		CrossKey:  p.crossKey,
		Free:      true,
	}
}

// Generate builds both stores. Cross-listed products occupy correlated,
// popularity-biased ranks in each store; the rest of each store is filled
// with single-platform products whose category mix depends on their rank
// segment.
func Generate(cfg GenConfig) (android, ios *Store) {
	rng := cfg.Rng
	android = &Store{Platform: appmodel.Android, byID: make(map[string]*Listing)}
	ios = &Store{Platform: appmodel.IOS, byID: make(map[string]*Listing)}

	type slotted struct {
		l    *Listing
		rank float64
	}
	var aSlots, iSlots []slotted
	seq := 0

	// Cross-listed products: popularity-biased placement (AlternativeTo
	// popularity correlates with, but does not equal, store rank).
	for i := 0; i < cfg.CrossProducts; i++ {
		p := newProduct(rng.ChildN("cross", i), i, segCommon, true)
		seq++
		// Bias toward the head: squared uniform concentrates low ranks.
		f := rng.Float64()
		base := f * f
		aSlots = append(aSlots, slotted{p.listing(appmodel.Android, seq), base + rng.Float64()*0.1})
		iSlots = append(iSlots, slotted{p.listing(appmodel.IOS, seq), base + rng.Float64()*0.1})
	}

	fill := func(plat appmodel.Platform, total int, slots *[]slotted, label string) {
		for i := len(*slots); i < total; i++ {
			// Rank fraction decides the category segment.
			frac := rng.Float64()
			seg := segRandom
			if float64(cfg.PopularCut)/float64(total) > frac {
				seg = segPopular
			}
			// The label reaches this site through the closure parameter, but
			// both call sites below pass distinct constants ("a"/"i"); folding
			// the label into the closure would change the derivation labels
			// and invalidate every seeded world.
			//pinlint:allow detrandflow label is a distinct per-platform constant at both fill call sites
			p := newProduct(rng.ChildN(label, i), i, seg, false)
			seq++
			*slots = append(*slots, slotted{p.listing(plat, seq), frac})
		}
	}
	fill(appmodel.Android, cfg.AndroidSize, &aSlots, "a")
	fill(appmodel.IOS, cfg.IOSSize, &iSlots, "i")

	finish := func(st *Store, slots []slotted) {
		sort.SliceStable(slots, func(i, j int) bool { return slots[i].rank < slots[j].rank })
		for i, s := range slots {
			s.l.Rank = i + 1
			// Disambiguate ID collisions from name reuse.
			for st.byID[s.l.ID] != nil {
				s.l.ID += "x"
			}
			st.listings = append(st.listings, s.l)
			st.byID[s.l.ID] = s.l
		}
	}
	finish(android, aSlots)
	finish(ios, iSlots)
	return android, ios
}

// Dataset is one of the study's app sets.
type Dataset struct {
	Name     string // "Common", "Popular", "Random"
	Platform appmodel.Platform
	Listings []*Listing
}

// CategoryCounts tallies listings per category.
func (d *Dataset) CategoryCounts() map[string]int {
	out := make(map[string]int)
	for _, l := range d.Listings {
		out[l.Category]++
	}
	return out
}

// CrawlPopularAndroid reproduces the google-play-scraper methodology: crawl
// the "Top Free" lists (≈12k listings), then sample n at random.
func CrawlPopularAndroid(store *Store, rng *detrand.Source, n int) *Dataset {
	pool := store.Top(12 * n)
	picked := detrand.Sample(rng, pool, n)
	return &Dataset{Name: "Popular", Platform: appmodel.Android, Listings: picked}
}

// CrawlPopularIOS reproduces the iTunes Search API methodology: for each of
// the 19 generic category terms, take the top 100 results, then keep the n
// most popular compatible free apps (the set "captures the notion of
// popularity" — per-category quotas alone would flatten the category mix,
// which Table 1 shows is not what the paper's set looks like).
func CrawlPopularIOS(store *Store, rng *detrand.Source, n int) *Dataset {
	seen := make(map[string]bool)
	var pool []*Listing
	for ci, cat := range ITunesSearchCategories {
		termRng := rng.ChildN("term", ci)
		count := 0
		for _, l := range store.Listings() {
			// Search terms are fuzzy: generic words also surface top games
			// ("Quiz", "Puzzle", ...), which is why the paper's popular iOS
			// set is a fifth games despite per-term result caps.
			match := l.Category == cat ||
				(l.Category == "Games" && cat != "Games" && termRng.Bool(0.12))
			if !match || !l.Free {
				continue
			}
			if !seen[l.ID] {
				seen[l.ID] = true
				pool = append(pool, l)
			}
			count++
			if count == 100 { // API returns at most 100 results per call
				break
			}
		}
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].Rank < pool[j].Rank })
	if n < len(pool) {
		// Small jitter at the boundary: device-compatibility filtering
		// drops some entries, pulling a few lower-ranked apps in.
		head := pool[:n]
		tail := detrand.Sample(rng, pool[n:], n/20)
		head = append(head[:n-len(tail)], tail...)
		pool = head
	}
	return &Dataset{Name: "Popular", Platform: appmodel.IOS, Listings: pool}
}

// CrawlRandom samples n listings uniformly from the full ID list.
func CrawlRandom(store *Store, rng *detrand.Source, n int) *Dataset {
	picked := detrand.Sample(rng, store.Listings(), n)
	return &Dataset{Name: "Random", Platform: store.Platform, Listings: picked}
}

// CrawlCommon reproduces the AlternativeTo walk: visit the top `pages`
// product pages by popularity and keep products with links to both stores.
// The two returned datasets are index-aligned (entry i is the same product).
func CrawlCommon(android, ios *Store, pages int) (*Dataset, *Dataset) {
	type prod struct {
		a, i *Listing
		pop  int
	}
	byKey := make(map[string]*prod)
	for _, l := range android.Listings() {
		if l.CrossKey != "" {
			byKey[l.CrossKey] = &prod{a: l, pop: l.Rank}
		}
	}
	for _, l := range ios.Listings() {
		if l.CrossKey == "" {
			continue
		}
		if p, ok := byKey[l.CrossKey]; ok {
			p.i = l
			if l.Rank < p.pop {
				p.pop = l.Rank
			}
		}
	}
	var prods []*prod
	for _, p := range byKey {
		if p.a != nil && p.i != nil {
			prods = append(prods, p)
		}
	}
	// AlternativeTo popularity ordering ~ best store rank.
	sort.Slice(prods, func(x, y int) bool {
		if prods[x].pop != prods[y].pop {
			return prods[x].pop < prods[y].pop
		}
		return prods[x].a.ID < prods[y].a.ID
	})
	if pages < len(prods) {
		prods = prods[:pages]
	}
	da := &Dataset{Name: "Common", Platform: appmodel.Android}
	di := &Dataset{Name: "Common", Platform: appmodel.IOS}
	for _, p := range prods {
		da.Listings = append(da.Listings, p.a)
		di.Listings = append(di.Listings, p.i)
	}
	return da, di
}

// UniqueApps counts distinct listings across datasets of one platform,
// reporting collisions the way the paper does (§3).
func UniqueApps(datasets ...*Dataset) (unique, collisions int) {
	seen := make(map[string]bool)
	total := 0
	for _, d := range datasets {
		for _, l := range d.Listings {
			total++
			if !seen[l.ID] {
				seen[l.ID] = true
			}
		}
	}
	return len(seen), total - len(seen)
}
