package appstore

import (
	"testing"

	"pinscope/internal/appmodel"
	"pinscope/internal/detrand"
)

func genStores(t *testing.T, seed int64) (*Store, *Store) {
	t.Helper()
	a, i := Generate(GenConfig{
		Rng:           detrand.New(seed),
		AndroidSize:   4000,
		IOSSize:       3800,
		CrossProducts: 700,
		PopularCut:    800,
	})
	return a, i
}

func TestGenerateSizes(t *testing.T) {
	a, i := genStores(t, 1)
	if a.Len() != 4000 || i.Len() != 3800 {
		t.Fatalf("sizes: %d %d", a.Len(), i.Len())
	}
}

func TestRanksAreSequential(t *testing.T) {
	a, _ := genStores(t, 2)
	for idx, l := range a.Listings() {
		if l.Rank != idx+1 {
			t.Fatalf("listing %d has rank %d", idx, l.Rank)
		}
	}
}

func TestIDsUniqueAndResolvable(t *testing.T) {
	a, i := genStores(t, 3)
	for _, st := range []*Store{a, i} {
		seen := map[string]bool{}
		for _, l := range st.Listings() {
			if seen[l.ID] {
				t.Fatalf("duplicate ID %q", l.ID)
			}
			seen[l.ID] = true
			if st.ByID(l.ID) != l {
				t.Fatalf("ByID broken for %q", l.ID)
			}
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a1, _ := genStores(t, 4)
	a2, _ := genStores(t, 4)
	for idx := range a1.Listings() {
		l1, l2 := a1.Listings()[idx], a2.Listings()[idx]
		if l1.ID != l2.ID || l1.Category != l2.Category || l1.Rank != l2.Rank {
			t.Fatalf("non-deterministic at %d: %+v vs %+v", idx, l1, l2)
		}
	}
}

func TestCrossProductsOnBothStores(t *testing.T) {
	a, i := genStores(t, 5)
	aCross := map[string]*Listing{}
	for _, l := range a.Listings() {
		if l.CrossKey != "" {
			aCross[l.CrossKey] = l
		}
	}
	n := 0
	for _, l := range i.Listings() {
		if l.CrossKey == "" {
			continue
		}
		al, ok := aCross[l.CrossKey]
		if !ok {
			t.Fatalf("iOS cross product %q missing on Android", l.CrossKey)
		}
		if al.Name != l.Name || al.Developer != l.Developer {
			t.Fatalf("cross product metadata mismatch: %+v vs %+v", al, l)
		}
		n++
	}
	if n != 700 {
		t.Fatalf("%d cross products on iOS, want 700", n)
	}
}

func TestHeadUsesPopularMix(t *testing.T) {
	a, _ := Generate(GenConfig{
		Rng:         detrand.New(6),
		AndroidSize: 10000, IOSSize: 100, CrossProducts: 0, PopularCut: 2000,
	})
	games := 0
	head := a.Top(2000)
	for _, l := range head {
		if l.Category == "Games" {
			games++
		}
	}
	// Popular mix has 36% games; the random tail 12%.
	rate := float64(games) / float64(len(head))
	if rate < 0.25 {
		t.Fatalf("head games rate %.2f, expected popular-mix dominance", rate)
	}
	tailGames := 0
	tail := a.Listings()[8000:]
	for _, l := range tail {
		if l.Category == "Games" {
			tailGames++
		}
	}
	tailRate := float64(tailGames) / float64(len(tail))
	if tailRate >= rate {
		t.Fatalf("tail games rate %.2f >= head %.2f", tailRate, rate)
	}
}

func TestCrawlPopularAndroid(t *testing.T) {
	a, _ := genStores(t, 7)
	d := CrawlPopularAndroid(a, detrand.New(70), 300)
	if len(d.Listings) != 300 || d.Name != "Popular" || d.Platform != appmodel.Android {
		t.Fatalf("dataset: %s/%s n=%d", d.Name, d.Platform, len(d.Listings))
	}
	// All picks come from the top-12n pool.
	for _, l := range d.Listings {
		if l.Rank > 12*300 {
			t.Fatalf("listing rank %d outside Top Free pool", l.Rank)
		}
	}
}

func TestCrawlPopularIOS(t *testing.T) {
	_, i := genStores(t, 8)
	d := CrawlPopularIOS(i, detrand.New(80), 300)
	if len(d.Listings) != 300 {
		t.Fatalf("n=%d", len(d.Listings))
	}
	seen := map[string]bool{}
	for _, l := range d.Listings {
		if seen[l.ID] {
			t.Fatalf("duplicate in iOS popular: %s", l.ID)
		}
		seen[l.ID] = true
	}
}

func TestCrawlRandomSpansTail(t *testing.T) {
	a, _ := genStores(t, 9)
	d := CrawlRandom(a, detrand.New(90), 500)
	if len(d.Listings) != 500 {
		t.Fatalf("n=%d", len(d.Listings))
	}
	tail := 0
	for _, l := range d.Listings {
		if l.Rank > a.Len()/2 {
			tail++
		}
	}
	if tail < 150 {
		t.Fatalf("random sample has only %d tail apps", tail)
	}
}

func TestCrawlCommonPairsAligned(t *testing.T) {
	a, i := genStores(t, 10)
	da, di := CrawlCommon(a, i, 575)
	if len(da.Listings) != 575 || len(di.Listings) != 575 {
		t.Fatalf("common sizes %d/%d", len(da.Listings), len(di.Listings))
	}
	for idx := range da.Listings {
		if da.Listings[idx].CrossKey != di.Listings[idx].CrossKey {
			t.Fatalf("misaligned pair at %d", idx)
		}
		if da.Listings[idx].Platform != appmodel.Android || di.Listings[idx].Platform != appmodel.IOS {
			t.Fatal("platform mixup")
		}
	}
}

func TestCrawlCommonLimitedByAvailability(t *testing.T) {
	a, i := Generate(GenConfig{
		Rng: detrand.New(11), AndroidSize: 500, IOSSize: 500, CrossProducts: 50, PopularCut: 100,
	})
	da, _ := CrawlCommon(a, i, 575)
	if len(da.Listings) != 50 {
		t.Fatalf("%d common apps, want 50", len(da.Listings))
	}
}

func TestUniqueApps(t *testing.T) {
	a, i := genStores(t, 12)
	da, _ := CrawlCommon(a, i, 575)
	dp := CrawlPopularAndroid(a, detrand.New(120), 1000)
	dr := CrawlRandom(a, detrand.New(121), 1000)
	unique, collisions := UniqueApps(da, dp, dr)
	if unique+collisions != 575+1000+1000 {
		t.Fatalf("accounting broken: %d + %d", unique, collisions)
	}
	if unique < 2000 {
		t.Fatalf("implausibly few unique apps: %d", unique)
	}
	_ = i
}

func TestCategoryCounts(t *testing.T) {
	a, _ := genStores(t, 13)
	d := CrawlRandom(a, detrand.New(130), 800)
	counts := d.CategoryCounts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 800 {
		t.Fatalf("category counts sum to %d", total)
	}
	if len(counts) < 15 {
		t.Fatalf("only %d categories in random sample", len(counts))
	}
}

func TestCrawlPopularIOSGamesShare(t *testing.T) {
	// The iTunes-search emulation must keep the popular iOS set games-heavy
	// (Table 1: ~21%) despite per-term result caps, via fuzzy term matches.
	_, i := Generate(GenConfig{
		Rng:         detrand.New(21),
		AndroidSize: 1000, IOSSize: 20000, CrossProducts: 0, PopularCut: 2400,
	})
	d := CrawlPopularIOS(i, detrand.New(22), 1000)
	games := 0
	for _, l := range d.Listings {
		if l.Category == "Games" {
			games++
		}
	}
	share := float64(games) / float64(len(d.Listings))
	if share < 0.12 || share > 0.35 {
		t.Fatalf("games share %.2f outside the popular-head band", share)
	}
}

func TestCrawlPopularIOSPrefersHead(t *testing.T) {
	_, i := Generate(GenConfig{
		Rng:         detrand.New(23),
		AndroidSize: 1000, IOSSize: 20000, CrossProducts: 0, PopularCut: 2400,
	})
	d := CrawlPopularIOS(i, detrand.New(24), 500)
	head := 0
	for _, l := range d.Listings {
		if l.Rank <= 4000 {
			head++
		}
	}
	if head < 400 {
		t.Fatalf("only %d/500 picks from the store head", head)
	}
}
