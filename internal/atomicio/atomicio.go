// Package atomicio publishes artifacts crash-safely. Every file the study
// releases (dataset exports, selftest snapshots) goes through the same
// sequence — write to a temp file in the destination directory, fsync,
// rename over the final name, fsync the directory — so a reader never
// observes a partially written artifact under its final name, no matter
// when the process dies. An optional ".crc" sidecar records a CRC32C of
// the published bytes so consumers can detect bit rot or a torn copy
// loudly instead of decoding garbage.
//
// The pinlint analyzer "atomicwrite" enforces that artifact writers use
// this package rather than bare os.Create / os.WriteFile.
package atomicio

import (
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
)

// ErrChecksumMismatch marks a file whose bytes do not match its ".crc"
// sidecar — a torn copy, truncation, or bit rot.
var ErrChecksumMismatch = errors.New("atomicio: checksum mismatch")

// castagnoli is the CRC32C polynomial table (the same checksum the journal
// frames use).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// options collects Create/WriteFile options.
type options struct {
	checksum bool
	perm     fs.FileMode
}

// Option configures an atomic write.
type Option func(*options)

// WithChecksum also publishes a "<path>.crc" sidecar recording the CRC32C
// and size of the written bytes. VerifyFile checks it.
func WithChecksum() Option { return func(o *options) { o.checksum = true } }

// WithPerm sets the published file's permissions (default 0o644).
func WithPerm(perm fs.FileMode) Option { return func(o *options) { o.perm = perm } }

// Writer streams an artifact into a temp file and publishes it atomically
// on Commit. Close without Commit aborts and removes the temp file, so
//
//	w, _ := atomicio.Create(path)
//	defer w.Close()
//	... write ...
//	return w.Commit()
//
// never leaves a partial artifact under the final name.
type Writer struct {
	f    *os.File
	path string
	opts options
	sum  hash.Hash32
	n    int64
	done bool
}

// Create starts an atomic write of path.
func Create(path string, opt ...Option) (*Writer, error) {
	o := options{perm: 0o644}
	for _, fn := range opt {
		fn(&o)
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("atomicio: create temp in %s: %w", dir, err)
	}
	return &Writer{f: f, path: path, opts: o, sum: crc32.New(castagnoli)}, nil
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	n, err := w.f.Write(p)
	w.sum.Write(p[:n])
	w.n += int64(n)
	return n, err
}

// Commit fsyncs, publishes the temp file under the final name, and fsyncs
// the directory. After Commit, Close is a no-op.
func (w *Writer) Commit() error {
	if w.done {
		return errors.New("atomicio: Commit on a finished writer")
	}
	w.done = true
	tmp := w.f.Name()
	fail := func(err error) error {
		w.f.Close()
		os.Remove(tmp)
		return err
	}
	if err := w.f.Sync(); err != nil {
		return fail(fmt.Errorf("atomicio: fsync %s: %w", tmp, err))
	}
	if err := w.f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomicio: close %s: %w", tmp, err)
	}
	if err := os.Chmod(tmp, w.opts.perm); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomicio: chmod %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, w.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomicio: publish %s: %w", w.path, err)
	}
	if w.opts.checksum {
		sidecar := fmt.Sprintf("crc32c=%08x size=%d\n", w.sum.Sum32(), w.n)
		if err := WriteFile(w.path+".crc", []byte(sidecar), WithPerm(w.opts.perm)); err != nil {
			return err
		}
	}
	return syncDir(filepath.Dir(w.path))
}

// Close aborts an uncommitted write, removing the temp file. Safe to call
// after Commit (then a no-op).
func (w *Writer) Close() error {
	if w.done {
		return nil
	}
	w.done = true
	err := w.f.Close()
	os.Remove(w.f.Name())
	return err
}

// WriteFile atomically replaces path with data (the crash-safe counterpart
// of os.WriteFile).
func WriteFile(path string, data []byte, opt ...Option) error {
	w, err := Create(path, opt...)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Close()
		return fmt.Errorf("atomicio: write %s: %w", path, err)
	}
	return w.Commit()
}

// VerifyFile checks path against its "<path>.crc" sidecar. It returns
// (true, nil) when the sidecar exists and matches, (false, nil) when no
// sidecar exists (nothing to verify), and an error wrapping
// ErrChecksumMismatch when the bytes disagree with the sidecar.
func VerifyFile(path string) (bool, error) {
	raw, err := os.ReadFile(path + ".crc")
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("atomicio: read sidecar: %w", err)
	}
	var wantSum uint32
	var wantSize int64
	if _, err := fmt.Sscanf(string(raw), "crc32c=%08x size=%d", &wantSum, &wantSize); err != nil {
		return false, fmt.Errorf("atomicio: malformed sidecar %s.crc: %w (%w)", path, err, ErrChecksumMismatch)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return false, fmt.Errorf("atomicio: read %s: %w", path, err)
	}
	gotSum := crc32.Checksum(data, castagnoli)
	if int64(len(data)) != wantSize || gotSum != wantSum {
		return false, fmt.Errorf("atomicio: %s: %w: have crc32c=%08x size=%d, sidecar says crc32c=%08x size=%d",
			path, ErrChecksumMismatch, gotSum, len(data), wantSum, wantSize)
	}
	return true, nil
}

// syncDir fsyncs a directory so the rename itself is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("atomicio: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("atomicio: fsync dir %s: %w", dir, err)
	}
	return nil
}
