package atomicio_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pinscope/internal/atomicio"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	if err := atomicio.WriteFile(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := atomicio.WriteFile(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("content = %q, want %q", got, "v2")
	}
	// No temp droppings survive a completed write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "artifact.json" {
		t.Fatalf("directory has leftovers: %v", entries)
	}
}

func TestWriterAbortLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	w, err := atomicio.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("partial")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("aborted write published %s", path)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatalf("abort left temp files: %v", entries)
	}
}

func TestWriterCommitThenCloseIsNoop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a")
	w, err := atomicio.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "x" {
		t.Fatalf("content = %q, %v", got, err)
	}
}

func TestChecksumSidecarVerifies(t *testing.T) {
	path := filepath.Join(t.TempDir(), "artifact.json")
	if err := atomicio.WriteFile(path, []byte("checked bytes"), atomicio.WithChecksum()); err != nil {
		t.Fatal(err)
	}
	verified, err := atomicio.VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !verified {
		t.Fatal("sidecar written but VerifyFile reports nothing to verify")
	}
}

func TestVerifyFileWithoutSidecar(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plain")
	if err := atomicio.WriteFile(path, []byte("no sidecar")); err != nil {
		t.Fatal(err)
	}
	verified, err := atomicio.VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if verified {
		t.Fatal("VerifyFile claims verification with no sidecar present")
	}
}

func TestVerifyFileDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "artifact.json")
	if err := atomicio.WriteFile(path, []byte("original bytes"), atomicio.WithChecksum()); err != nil {
		t.Fatal(err)
	}
	// Corrupt the artifact behind the sidecar's back (lint note: a bare
	// write is the point here — we are simulating a torn copy).
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("tampered")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := atomicio.VerifyFile(path); !errors.Is(err, atomicio.ErrChecksumMismatch) {
		t.Fatalf("VerifyFile error = %v, want ErrChecksumMismatch", err)
	}
}

func TestVerifyFileMalformedSidecar(t *testing.T) {
	path := filepath.Join(t.TempDir(), "artifact.json")
	if err := atomicio.WriteFile(path, []byte("bytes")); err != nil {
		t.Fatal(err)
	}
	if err := atomicio.WriteFile(path+".crc", []byte("not a sidecar")); err != nil {
		t.Fatal(err)
	}
	_, err := atomicio.VerifyFile(path)
	if !errors.Is(err, atomicio.ErrChecksumMismatch) {
		t.Fatalf("VerifyFile error = %v, want ErrChecksumMismatch", err)
	}
	if !strings.Contains(err.Error(), "sidecar") {
		t.Fatalf("error does not name the sidecar: %v", err)
	}
}
