package sdkregistry

import (
	"testing"

	"pinscope/internal/appmodel"
)

func TestCatalogPlatformSeparation(t *testing.T) {
	for _, s := range Catalog(appmodel.Android) {
		if s.Platform != appmodel.Android {
			t.Fatalf("%s in Android catalog has platform %s", s.Name, s.Platform)
		}
	}
	for _, s := range Catalog(appmodel.IOS) {
		if s.Platform != appmodel.IOS {
			t.Fatalf("%s in iOS catalog has platform %s", s.Name, s.Platform)
		}
	}
}

func TestPinningSDKsAllPin(t *testing.T) {
	for _, p := range appmodel.Platforms {
		pins := PinningSDKs(p)
		if len(pins) < 5 {
			t.Fatalf("only %d pinning SDKs on %s", len(pins), p)
		}
		for _, s := range pins {
			if !s.Pinning {
				t.Fatalf("%s returned by PinningSDKs without Pinning", s.Name)
			}
			if !s.CertCarrier {
				t.Fatalf("pinning SDK %s carries no cert material", s.Name)
			}
		}
	}
}

func TestTable7FrameworksPresent(t *testing.T) {
	android := []string{"Twitter", "Braintree", "Paypal", "Perimeterx", "MParticle"}
	for _, n := range android {
		if _, ok := ByName(appmodel.Android, n); !ok {
			t.Fatalf("Android Table 7 framework %s missing", n)
		}
	}
	ios := []string{"Amplitude", "Stripe", "Weibo", "FraudForce", "AdobeCreativeCloud"}
	for _, n := range ios {
		if _, ok := ByName(appmodel.IOS, n); !ok {
			t.Fatalf("iOS Table 7 framework %s missing", n)
		}
	}
}

func TestTable7WeightOrdering(t *testing.T) {
	// Inclusion weights must reproduce the Table 7 ordering within each
	// platform's cert-carrying set.
	order := []string{"Twitter", "Braintree", "Paypal", "Perimeterx", "MParticle"}
	var prev float64 = 1
	for _, n := range order {
		s, _ := ByName(appmodel.Android, n)
		if s.Weight > prev {
			t.Fatalf("weight ordering violated at %s", n)
		}
		prev = s.Weight
	}
	orderIOS := []string{"Amplitude", "Stripe", "Weibo", "FraudForce", "AdobeCreativeCloud"}
	prev = 1
	for _, n := range orderIOS {
		s, _ := ByName(appmodel.IOS, n)
		if s.Weight > prev {
			t.Fatalf("iOS weight ordering violated at %s", n)
		}
		prev = s.Weight
	}
}

func TestAttributePathAndroid(t *testing.T) {
	s, ok := AttributePath(appmodel.Android, "smali/com/twitter/sdk/android/core/TwitterCore.smali")
	if !ok || s.Name != "Twitter" {
		t.Fatalf("got %v %v", s.Name, ok)
	}
	if _, ok := AttributePath(appmodel.Android, "smali/com/example/myapp/Main.smali"); ok {
		t.Fatal("first-party path attributed to an SDK")
	}
	// Prefix must be a path boundary, not a string prefix.
	if _, ok := AttributePath(appmodel.Android, "smali/com/twitter/sdkevil/X.smali"); ok {
		t.Fatal("non-boundary prefix matched")
	}
}

func TestAttributePathIOS(t *testing.T) {
	s, ok := AttributePath(appmodel.IOS, "Payload/Shop.app/Frameworks/Stripe.framework/cert.pem")
	if !ok || s.Name != "Stripe" {
		t.Fatalf("got %v %v", s.Name, ok)
	}
}

func TestPaypalObjectsPinnedOnIOS(t *testing.T) {
	// The destination behind the random-iOS pinning bump must be pinned by
	// the iOS PayPal SDK.
	s, ok := ByName(appmodel.IOS, "PaypalCheckout")
	if !ok {
		t.Fatal("PaypalCheckout missing")
	}
	found := false
	for _, d := range s.PinnedDomains {
		if d == "www.paypalobjects.com" {
			found = true
		}
	}
	if !found {
		t.Fatalf("www.paypalobjects.com not pinned by iOS PayPal SDK: %v", s.PinnedDomains)
	}
}

func TestOrgDomains(t *testing.T) {
	m := OrgDomains()
	if m["api.twitter.com"] != "Twitter Inc" {
		t.Fatalf("api.twitter.com org: %q", m["api.twitter.com"])
	}
	if m["www.paypalobjects.com"] != "PayPal Holdings" {
		t.Fatalf("paypalobjects org: %q", m["www.paypalobjects.com"])
	}
	if len(m) < 20 {
		t.Fatalf("only %d org domains", len(m))
	}
}

func TestWeightsAreProbabilities(t *testing.T) {
	for _, p := range appmodel.Platforms {
		for _, s := range Catalog(p) {
			if s.Weight <= 0 || s.Weight > 1 {
				t.Fatalf("%s weight %v out of (0,1]", s.Name, s.Weight)
			}
			if s.AdIDRate < 0 || s.AdIDRate > 1 {
				t.Fatalf("%s AdIDRate %v", s.Name, s.AdIDRate)
			}
		}
	}
}
