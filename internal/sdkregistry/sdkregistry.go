// Package sdkregistry catalogs the third-party SDKs of the simulated app
// ecosystem. Third-party code is central to the paper's findings: most
// pinned destinations belong to third parties, and Table 7 attributes
// embedded certificate material to SDK code paths (Twitter, Braintree,
// PayPal, Perimeterx, MParticle on Android; Amplitude, Stripe, Weibo,
// FraudForce, Adobe Creative Cloud on iOS).
//
// The registry holds SDK descriptors — code paths, contacted domains,
// whether the SDK pins, which TLS stack it uses, and how commonly apps
// embed it. The world generator materializes descriptors into app packages
// and behaviour plans; the static pipeline attributes certificate paths
// back to SDKs the way the authors did, from public knowledge of where each
// SDK lives in an app package.
package sdkregistry

import (
	"strings"

	"pinscope/internal/appmodel"
)

// SDK describes one third-party framework.
type SDK struct {
	Name     string
	Platform appmodel.Platform
	// CodePath is the directory prefix the SDK occupies inside an app
	// package (smali path on Android, Frameworks/ path on iOS).
	CodePath string
	// Org is the registrant organization of the SDK's domains.
	Org string
	// Domains the SDK contacts at run time.
	Domains []string
	// PinnedDomains is the subset the SDK pins when pinning is active.
	PinnedDomains []string
	// Pinning marks SDKs that enforce pins at run time.
	Pinning bool
	// CertCarrier marks SDKs that ship certificate/pin material in the
	// package (even when runtime pinning is absent or disabled — the gap
	// between static and dynamic detection).
	CertCarrier bool
	// Lib is the TLS stack the SDK's connections use.
	Lib appmodel.TLSLib
	// Weight is the base inclusion probability in an app ([0,1]).
	Weight float64
	// AdIDRate is the probability one of its connections carries the
	// advertising ID.
	AdIDRate float64
	// Kind groups SDKs for reporting: "social", "payments", "analytics",
	// "fraud", "cloud", "ads", "crash".
	Kind string
}

// androidCatalog lists Android SDKs. Weights are calibrated so the ordering
// of cert-carrying frameworks matches Table 7 and third-party traffic
// dominates contacted domains, as in the paper.
var androidCatalog = []SDK{
	// Cert-carrying / pinning SDKs (Table 7, Android column).
	{
		Name: "Twitter", Platform: appmodel.Android, CodePath: "smali/com/twitter/sdk",
		Org: "Twitter Inc", Domains: []string{"api.twitter.com", "syndication.twitter.com"},
		PinnedDomains: []string{"api.twitter.com"}, Pinning: true, CertCarrier: true,
		Lib: appmodel.LibOkHttp, Weight: 0.013, AdIDRate: 0.35, Kind: "social",
	},
	{
		Name: "Braintree", Platform: appmodel.Android, CodePath: "smali/com/braintreepayments/api",
		Org: "PayPal Holdings", Domains: []string{"api.braintreegateway.com"},
		PinnedDomains: []string{"api.braintreegateway.com"}, Pinning: true, CertCarrier: true,
		Lib: appmodel.LibOkHttp, Weight: 0.012, AdIDRate: 0, Kind: "payments",
	},
	{
		Name: "Paypal", Platform: appmodel.Android, CodePath: "smali/com/paypal/android/sdk",
		Org: "PayPal Holdings", Domains: []string{"api-m.paypal.com", "www.paypalobjects.com"},
		PinnedDomains: []string{"api-m.paypal.com"}, Pinning: true, CertCarrier: true,
		Lib: appmodel.LibOkHttp, Weight: 0.011, AdIDRate: 0, Kind: "payments",
	},
	{
		Name: "Perimeterx", Platform: appmodel.Android, CodePath: "smali/com/perimeterx/mobile_sdk",
		Org: "PerimeterX Inc", Domains: []string{"collector.perimeterx.net"},
		PinnedDomains: []string{"collector.perimeterx.net"}, Pinning: true, CertCarrier: true,
		Lib: appmodel.LibCustomNative, Weight: 0.0042, AdIDRate: 0.55, Kind: "fraud",
	},
	{
		Name: "MParticle", Platform: appmodel.Android, CodePath: "smali/com/mparticle",
		Org: "mParticle Inc", Domains: []string{"config2.mparticle.com", "nativesdks.mparticle.com"},
		PinnedDomains: []string{"config2.mparticle.com"}, Pinning: true, CertCarrier: true,
		Lib: appmodel.LibOkHttp, Weight: 0.0040, AdIDRate: 0.6, Kind: "analytics",
	},
	{
		Name: "Sensibill", Platform: appmodel.Android, CodePath: "smali/com/getsensibill",
		Org: "Sensibill Inc", Domains: []string{"receipts.getsensibill.com"},
		PinnedDomains: []string{"receipts.getsensibill.com"}, Pinning: true, CertCarrier: true,
		Lib: appmodel.LibOkHttp, Weight: 0.0025, AdIDRate: 0, Kind: "payments",
	},

	// High-volume non-pinning SDKs: the unpinned third-party background.
	{
		Name: "FirebaseAnalytics", Platform: appmodel.Android, CodePath: "smali/com/google/firebase/analytics",
		Org: "Google LLC", Domains: []string{"app-measurement.com", "firebaseinstallations.googleapis.com"},
		Lib: appmodel.LibConscrypt, Weight: 0.55, AdIDRate: 0.30, Kind: "analytics",
	},
	{
		Name: "AdMob", Platform: appmodel.Android, CodePath: "smali/com/google/android/gms/ads",
		Org: "Google LLC", Domains: []string{"googleads.g.doubleclick.net", "pagead2.googlesyndication.com"},
		Lib: appmodel.LibConscrypt, Weight: 0.38, AdIDRate: 0.42, Kind: "ads",
	},
	{
		Name: "Crashlytics", Platform: appmodel.Android, CodePath: "smali/com/google/firebase/crashlytics",
		Org: "Google LLC", Domains: []string{"crashlyticsreports-pa.googleapis.com"},
		Lib: appmodel.LibConscrypt, Weight: 0.34, AdIDRate: 0.02, Kind: "crash",
	},
	{
		Name: "FacebookSDK", Platform: appmodel.Android, CodePath: "smali/com/facebook",
		Org: "Meta Platforms", Domains: []string{"graph.facebook.com", "connect.facebook.net"},
		Lib: appmodel.LibOkHttp, Weight: 0.30, AdIDRate: 0.36, Kind: "social",
	},
	{
		Name: "AppsFlyer", Platform: appmodel.Android, CodePath: "smali/com/appsflyer",
		Org: "AppsFlyer Ltd", Domains: []string{"t.appsflyer.com"},
		Lib: appmodel.LibOkHttp, Weight: 0.18, AdIDRate: 0.45, Kind: "analytics",
	},
	{
		Name: "UnityAds", Platform: appmodel.Android, CodePath: "smali/com/unity3d/ads",
		Org: "Unity Technologies", Domains: []string{"auction.unityads.unity3d.com"},
		Lib: appmodel.LibCustomNative, Weight: 0.14, AdIDRate: 0.40, Kind: "ads",
	},
}

// iosCatalog lists iOS SDKs (Table 7, iOS column, plus background SDKs).
var iosCatalog = []SDK{
	{
		Name: "Amplitude", Platform: appmodel.IOS, CodePath: "Frameworks/Amplitude.framework",
		Org: "Amplitude Inc", Domains: []string{"api2.amplitude.com"},
		PinnedDomains: []string{"api2.amplitude.com"}, Pinning: true, CertCarrier: true,
		Lib: appmodel.LibNSURLSession, Weight: 0.019, AdIDRate: 0.6, Kind: "analytics",
	},
	{
		Name: "Stripe", Platform: appmodel.IOS, CodePath: "Frameworks/Stripe.framework",
		Org: "Stripe Inc", Domains: []string{"api.stripe.com"},
		PinnedDomains: []string{"api.stripe.com"}, Pinning: true, CertCarrier: true,
		Lib: appmodel.LibNSURLSession, Weight: 0.015, AdIDRate: 0, Kind: "payments",
	},
	{
		Name: "Weibo", Platform: appmodel.IOS, CodePath: "Frameworks/WeiboSDK.framework",
		Org: "Sina Corp", Domains: []string{"api.weibo.com"},
		PinnedDomains: []string{"api.weibo.com"}, Pinning: true, CertCarrier: true,
		Lib: appmodel.LibAFNetworking, Weight: 0.011, AdIDRate: 0.35, Kind: "social",
	},
	{
		Name: "FraudForce", Platform: appmodel.IOS, CodePath: "Frameworks/FraudForce.framework",
		Org: "TransUnion", Domains: []string{"mpsnare.iesnare.com"},
		PinnedDomains: []string{"mpsnare.iesnare.com"}, Pinning: true, CertCarrier: true,
		Lib: appmodel.LibCustomNative, Weight: 0.0070, AdIDRate: 0.55, Kind: "fraud",
	},
	{
		Name: "AdobeCreativeCloud", Platform: appmodel.IOS, CodePath: "Frameworks/AdobeCreativeCloud.framework",
		Org: "Adobe Inc", Domains: []string{"cc-api-storage.adobe.io"},
		PinnedDomains: []string{"cc-api-storage.adobe.io"}, Pinning: true, CertCarrier: true,
		Lib: appmodel.LibNSURLSession, Weight: 0.0055, AdIDRate: 0.05, Kind: "cloud",
	},
	// PayPal on iOS pins www.paypalobjects.com — the destination behind the
	// elevated pinning rate in random iOS apps (§5, "Pinning by Platform").
	{
		Name: "PaypalCheckout", Platform: appmodel.IOS, CodePath: "Frameworks/PayPalCheckout.framework",
		Org: "PayPal Holdings", Domains: []string{"www.paypalobjects.com", "api-m.paypal.com"},
		PinnedDomains: []string{"www.paypalobjects.com"}, Pinning: true, CertCarrier: true,
		Lib: appmodel.LibNSURLSession, Weight: 0.011, AdIDRate: 0, Kind: "payments",
	},
	{
		Name: "FirebaseFirestore", Platform: appmodel.IOS, CodePath: "Frameworks/FirebaseFirestore.framework",
		Org: "Google LLC", Domains: []string{"firestore.googleapis.com"},
		PinnedDomains: []string{"firestore.googleapis.com"}, Pinning: true, CertCarrier: true,
		Lib: appmodel.LibFlutterBoring, Weight: 0.0060, AdIDRate: 0.05, Kind: "cloud",
	},
	{
		Name: "TrustKit", Platform: appmodel.IOS, CodePath: "Frameworks/TrustKit.framework",
		Org: "DataTheorem", Domains: nil, // pins the host app's own domains
		Pinning: true, CertCarrier: true,
		Lib: appmodel.LibTrustKit, Weight: 0.0045, AdIDRate: 0, Kind: "security",
	},

	// Background SDKs.
	{
		Name: "FirebaseAnalytics", Platform: appmodel.IOS, CodePath: "Frameworks/FirebaseAnalytics.framework",
		Org: "Google LLC", Domains: []string{"app-measurement.com", "firebaseinstallations.googleapis.com"},
		Lib: appmodel.LibNSURLSession, Weight: 0.48, AdIDRate: 0.28, Kind: "analytics",
	},
	{
		Name: "FacebookSDK", Platform: appmodel.IOS, CodePath: "Frameworks/FBSDKCoreKit.framework",
		Org: "Meta Platforms", Domains: []string{"graph.facebook.com"},
		Lib: appmodel.LibNSURLSession, Weight: 0.31, AdIDRate: 0.34, Kind: "social",
	},
	{
		Name: "Adjust", Platform: appmodel.IOS, CodePath: "Frameworks/Adjust.framework",
		Org: "Adjust GmbH", Domains: []string{"app.adjust.com"},
		Lib: appmodel.LibNSURLSession, Weight: 0.17, AdIDRate: 0.42, Kind: "analytics",
	},
	{
		Name: "AppLovin", Platform: appmodel.IOS, CodePath: "Frameworks/AppLovinSDK.framework",
		Org: "AppLovin Corp", Domains: []string{"ms.applovin.com"},
		Lib: appmodel.LibCustomNative, Weight: 0.13, AdIDRate: 0.40, Kind: "ads",
	},
}

// Catalog returns the SDK descriptors for a platform.
func Catalog(p appmodel.Platform) []SDK {
	if p == appmodel.Android {
		return androidCatalog
	}
	return iosCatalog
}

// PinningSDKs returns the catalog subset that pins at run time.
func PinningSDKs(p appmodel.Platform) []SDK {
	var out []SDK
	for _, s := range Catalog(p) {
		if s.Pinning {
			out = append(out, s)
		}
	}
	return out
}

// ByName returns the descriptor with the given name on the platform.
func ByName(p appmodel.Platform, name string) (SDK, bool) {
	for _, s := range Catalog(p) {
		if s.Name == name {
			return s, true
		}
	}
	return SDK{}, false
}

// AttributePath maps a file path inside an app package to the SDK whose
// code directory contains it, reproducing the paper's manual path review
// (§4.1.4). Returns ok=false for first-party or unknown paths.
func AttributePath(p appmodel.Platform, path string) (SDK, bool) {
	clean := strings.TrimPrefix(path, "/")
	// iOS paths are rooted under Payload/<App>.app/.
	if i := strings.Index(clean, ".app/"); i >= 0 {
		clean = clean[i+len(".app/"):]
	}
	for _, s := range Catalog(p) {
		if strings.HasPrefix(clean, s.CodePath+"/") || clean == s.CodePath {
			return s, true
		}
	}
	return SDK{}, false
}

// OrgDomains returns every (domain, org) pair in the catalog, for whois
// population.
func OrgDomains() map[string]string {
	out := make(map[string]string)
	for _, cat := range [][]SDK{androidCatalog, iosCatalog} {
		for _, s := range cat {
			for _, d := range s.Domains {
				out[d] = s.Org
			}
			for _, d := range s.PinnedDomains {
				out[d] = s.Org
			}
		}
	}
	return out
}
