package faultinject

import (
	"reflect"
	"testing"
)

func TestNilAndZeroPlansInjectNothing(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Enabled() {
		t.Fatal("nil plan enabled")
	}
	if nilPlan.ForApp("a", 0) != nil {
		t.Fatal("nil plan yielded app faults")
	}
	zero := NewPlan(1, Uniform(0))
	if zero.Enabled() {
		t.Fatal("zero-rate plan enabled")
	}
	if zero.ForApp("a", 0) != nil {
		t.Fatal("zero-rate plan yielded app faults")
	}

	// Nil AppFaults views are inert.
	var af *AppFaults
	if af.DecryptFails() {
		t.Fatal("nil app faults failed decryption")
	}
	if af.NetTap("baseline") != nil {
		t.Fatal("nil app faults produced a tap")
	}
	if w, ok := af.Run("baseline").TruncatedWindow(30); ok || w != 30 {
		t.Fatal("nil run faults truncated the window")
	}
	if _, ok := af.Run("baseline").CrashTime(30); ok {
		t.Fatal("nil run faults crashed the app")
	}
	if af.ForgeTap().ForgeFails("x.example") {
		t.Fatal("nil forge tap failed")
	}
}

func TestDecisionsAreDeterministicAndScopeKeyed(t *testing.T) {
	p1 := NewPlan(42, Uniform(0.5))
	p2 := NewPlan(42, Uniform(0.5))

	a1 := p1.ForApp("app.one", 0)
	a2 := p2.ForApp("app.one", 0)
	for _, host := range []string{"a.example", "b.example", "c.example"} {
		cf1 := a1.NetTap("mitm").ConnFaults(host, 3.5)
		cf2 := a2.NetTap("mitm").ConnFaults(host, 3.5)
		if cf1.ResetAfter != cf2.ResetAfter {
			t.Fatalf("reset decision differs for %s: %d vs %d", host, cf1.ResetAfter, cf2.ResetAfter)
		}
		for i := 0; i < 8; i++ {
			if cf1.DropCaptureRecord(i) != cf2.DropCaptureRecord(i) {
				t.Fatalf("drop decision differs for %s record %d", host, i)
			}
		}
		if a1.ForgeTap().ForgeFails(host) != a2.ForgeTap().ForgeFails(host) {
			t.Fatalf("forge decision differs for %s", host)
		}
	}

	// Attempts decorrelate: across many apps, attempt 0 and 1 must not
	// always agree.
	differ := false
	for i := 0; i < 64 && !differ; i++ {
		key := "app" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		d0 := p1.ForApp(key, 0).DecryptFails()
		d1 := p1.ForApp(key, 1).DecryptFails()
		if d0 != d1 {
			differ = true
		}
	}
	if !differ {
		t.Fatal("attempt scoping does not decorrelate decisions")
	}

	// Run legs decorrelate too.
	differ = false
	for i := 0; i < 64 && !differ; i++ {
		host := "h" + string(rune('a'+i%26)) + ".example"
		b := a1.NetTap("baseline").ConnFaults(host, 1)
		m := a1.NetTap("mitm").ConnFaults(host, 1)
		if (b.ResetAfter > 0) != (m.ResetAfter > 0) {
			differ = true
		}
	}
	if !differ {
		t.Fatal("run-leg scoping does not decorrelate decisions")
	}
}

func TestRatesBite(t *testing.T) {
	p := NewPlan(7, Uniform(0.2))
	a := p.ForApp("bite", 0)

	resets, drops, crashes, truncs := 0, 0, 0, 0
	const n = 500
	for i := 0; i < n; i++ {
		host := "host" + string(rune('a'+i%26)) + ".example"
		cf := a.NetTap("baseline").ConnFaults(host, float64(i))
		if cf.ResetAfter > 0 {
			resets++
			if cf.ResetAfter < 1 || cf.ResetAfter > 4 {
				t.Fatalf("reset budget %d outside handshake range", cf.ResetAfter)
			}
		}
		if cf.DropCaptureRecord(i % 8) {
			drops++
		}
		rf := p.ForApp("bite"+string(rune('a'+i%26)), i).Run("baseline")
		if _, ok := rf.CrashTime(30); ok {
			crashes++
		}
		if w, ok := rf.TruncatedWindow(30); ok {
			truncs++
			if w <= 0 || w >= 30 {
				t.Fatalf("truncated window %.2f out of range", w)
			}
		}
	}
	check := func(name string, got int) {
		// 20% ± generous tolerance on 500 samples.
		if got < n/10 || got > n*3/10 {
			t.Fatalf("%s rate implausible: %d/%d", name, got, n)
		}
	}
	check("reset", resets)
	check("drop", drops)
	check("crash", crashes)
	check("trunc", truncs)
}

func TestShardPlanLookupsNilSafe(t *testing.T) {
	var nilPlan *ShardPlan
	if nilPlan.Any() || nilPlan.KillFor(0) != nil || nilPlan.ExpiryFor(0) != nil {
		t.Fatal("nil ShardPlan injected something")
	}
	p := &ShardPlan{
		Kills:    []ShardKill{{Slice: 2, AfterResults: 3, TornBytes: 5}},
		Expiries: []LeaseExpiry{{Slice: 1, AfterResults: 1}},
	}
	if !p.Any() {
		t.Fatal("populated plan reports empty")
	}
	if k := p.KillFor(2); k == nil || k.AfterResults != 3 || k.TornBytes != 5 {
		t.Fatalf("KillFor(2) = %+v", p.KillFor(2))
	}
	if p.KillFor(1) != nil || p.ExpiryFor(2) != nil {
		t.Fatal("lookup matched the wrong slice")
	}
	if e := p.ExpiryFor(1); e == nil || e.AfterResults != 1 {
		t.Fatalf("ExpiryFor(1) = %+v", p.ExpiryFor(1))
	}
}

func TestShardKillTapFiresAtFrame(t *testing.T) {
	var nilKill *ShardKill
	if nilKill.Tap() != nil {
		t.Fatal("nil ShardKill produced a tap")
	}
	tap := (&ShardKill{Slice: 0, AfterResults: 2, TornBytes: 7}).Tap()
	if _, kill := tap(0); kill {
		t.Fatal("tap fired before its frame")
	}
	if _, kill := tap(1); kill {
		t.Fatal("tap fired before its frame")
	}
	torn, kill := tap(2)
	if !kill || torn != 7 {
		t.Fatalf("tap(2) = (%d, %v), want (7, true)", torn, kill)
	}
}

func TestDeriveShardPlanDeterministicAndCapped(t *testing.T) {
	items := []int{10, 10, 10, 10, 10, 10, 10, 10}
	a := DeriveShardPlan(77, 0.9, 4, items)
	b := DeriveShardPlan(77, 0.9, 4, items)
	if a == nil || b == nil {
		t.Fatal("high-rate derivation produced no faults")
	}
	if len(a.Kills) != len(b.Kills) || len(a.Expiries) != len(b.Expiries) {
		t.Fatal("same seed produced different plans")
	}
	for i := range a.Kills {
		if a.Kills[i] != b.Kills[i] {
			t.Fatalf("kill %d differs: %+v vs %+v", i, a.Kills[i], b.Kills[i])
		}
	}
	for i := range a.Expiries {
		if a.Expiries[i] != b.Expiries[i] {
			t.Fatalf("expiry %d differs: %+v vs %+v", i, a.Expiries[i], b.Expiries[i])
		}
	}
	if len(a.Kills) > 3 {
		t.Fatalf("%d kills with 4 workers: no survivor guaranteed", len(a.Kills))
	}
	for _, k := range a.Kills {
		if k.AfterResults < 0 || k.AfterResults >= items[k.Slice] {
			t.Fatalf("kill point %d outside slice of %d items", k.AfterResults, items[k.Slice])
		}
	}
	if DeriveShardPlan(77, 0, 4, items) != nil {
		t.Fatal("rate 0 produced a plan")
	}
	if c := DeriveShardPlan(78, 0.9, 4, items); len(c.Kills) == len(a.Kills) {
		// Different seeds usually differ; equal counts are fine as long as
		// the cut points moved.
		same := len(a.Kills) > 0
		for i := range c.Kills {
			if i < len(a.Kills) && c.Kills[i] != a.Kills[i] {
				same = false
			}
		}
		if same && len(a.Kills) > 0 {
			t.Log("seed 77 and 78 derived identical kills (unlikely but legal)")
		}
	}
}

func TestDeriveShardPlanNetFamilyCappedAndDeterministic(t *testing.T) {
	items := []int{10, 10, 10, 10, 10, 10, 10, 10}
	a := DeriveShardPlan(311, 1.0, 4, items)
	b := DeriveShardPlan(311, 1.0, 4, items)
	if a == nil || !a.Net.Any() {
		t.Fatalf("rate-1.0 derivation injected no network chaos: %+v", a)
	}
	if !reflect.DeepEqual(a.Net, b.Net) {
		t.Fatalf("same seed derived different network chaos:\n%+v\n%+v", a.Net, b.Net)
	}

	// Progress cap: the faults that hamper progress — kills, drops
	// (severed conns), partitions — must leave at least one slice on a
	// never-severed link.
	hampered := len(a.Kills) + len(a.Net.Drops) + len(a.Net.Partitions)
	if hampered > len(items)-1 {
		t.Fatalf("%d hampering faults across %d slices: no guaranteed progress", hampered, len(items))
	}
	// A killed slice draws no drop or partition on top: the kill already
	// severs its connection.
	killed := map[int]bool{}
	for _, k := range a.Kills {
		killed[k.Slice] = true
	}
	for _, d := range a.Net.Drops {
		if killed[d.Slice] {
			t.Fatalf("slice %d drew both a kill and a drop", d.Slice)
		}
	}
	for _, p := range a.Net.Partitions {
		if killed[p.Slice] {
			t.Fatalf("slice %d drew both a kill and a partition", p.Slice)
		}
	}

	// Every fault point stays inside its slice, and durations are drawn
	// relative to NetTTL so they interact with a lease deadline.
	for _, d := range a.Net.Delays {
		if d.Item < 0 || d.Item >= items[d.Slice] {
			t.Fatalf("delay item %d outside slice of %d items", d.Item, items[d.Slice])
		}
		if d.Ticks < NetTTL/2 {
			t.Fatalf("delay of %d ticks cannot overtake anything meaningful (TTL %d)", d.Ticks, NetTTL)
		}
	}
	for _, d := range a.Net.Drops {
		if d.Item < 0 || d.Item >= items[d.Slice] {
			t.Fatalf("drop item %d outside slice of %d items", d.Item, items[d.Slice])
		}
	}
	for _, d := range a.Net.Dups {
		if d.Item < 0 || d.Item >= items[d.Slice] {
			t.Fatalf("dup item %d outside slice of %d items", d.Item, items[d.Slice])
		}
	}
	for _, p := range a.Net.Partitions {
		if p.AfterItem < 0 || p.AfterItem >= items[p.Slice] {
			t.Fatalf("partition point %d outside slice of %d items", p.AfterItem, items[p.Slice])
		}
		if p.Ticks < NetTTL {
			t.Fatalf("partition of %d ticks cannot outlive a lease (TTL %d)", p.Ticks, NetTTL)
		}
	}

	// The stall point of a derived expiry stays strictly inside the
	// leased region: a stall after the final append would sit between the
	// work and the lease release, which the coordinator refuses to honor.
	for _, e := range a.Expiries {
		if e.AfterResults < 1 || e.AfterResults > items[e.Slice]-1 {
			t.Fatalf("expiry point %d outside [1, %d]", e.AfterResults, items[e.Slice]-1)
		}
	}

	if DeriveShardPlan(311, 0, 4, items) != nil {
		t.Fatal("rate 0 produced a plan")
	}
}
