// Package faultinject provides the study's deterministic fault-injection
// layer. The paper's measurement campaign was dominated by operational
// messiness — apps crashing mid-run, connections failing for reasons
// unrelated to pinning (§4.2.2's confounding failures), captures cut off by
// the 30 s window, iOS packages failing to decrypt — and the pipeline's
// robustness claims are only credible if it re-discovers ground truth
// *through* such faults, not in their absence.
//
// A Plan is seeded via internal/detrand and every decision is a pure
// function of (seed, scope label), never of shared mutable state or call
// order: the same app attempt sees the same faults regardless of worker
// scheduling, and a nil Plan (or all-zero Rates) injects nothing at all, so
// fault-free studies stay byte-identical to a build without this package.
//
// Scope hierarchy: Plan → ForApp(key, attempt) → per-run views. Keying the
// app scope by attempt number is what makes faults *transient*: a bounded
// retry of the same app rolls fresh, independent faults, exactly like
// rerunning a flaky app on the bench phone.
package faultinject

import (
	"fmt"
	"strconv"

	"pinscope/internal/detrand"
	"pinscope/internal/netem"
)

// Rates are per-fault injection probabilities in [0, 1].
type Rates struct {
	// ConnReset is the per-connection probability of a mid-handshake TCP
	// reset at the access link (netem layer).
	ConnReset float64
	// RecordDrop is the per-record probability that the monitoring tap
	// misses a record (pcap drop; netem layer).
	RecordDrop float64
	// CaptureTrunc is the per-run probability that the capture window is
	// cut short (device layer).
	CaptureTrunc float64
	// AppCrash is the per-run probability that the app dies mid-run
	// (device layer).
	AppCrash float64
	// DecryptFail is the per-attempt probability of a transient iOS
	// package-decryption failure (the paper's Appendix A obstacle).
	DecryptFail float64
	// ForgeFail is the per-host probability of a transient mitmproxy
	// leaf-forging error.
	ForgeFail float64
}

// Uniform sets every fault class to the same rate — the chaos-sweep knob.
func Uniform(rate float64) Rates {
	return Rates{
		ConnReset:    rate,
		RecordDrop:   rate,
		CaptureTrunc: rate,
		AppCrash:     rate,
		DecryptFail:  rate,
		ForgeFail:    rate,
	}
}

// Any reports whether any fault class has a positive rate.
func (r Rates) Any() bool {
	return r.ConnReset > 0 || r.RecordDrop > 0 || r.CaptureTrunc > 0 ||
		r.AppCrash > 0 || r.DecryptFail > 0 || r.ForgeFail > 0
}

// Plan is a seeded, fully reproducible fault plan for one study run.
type Plan struct {
	seed  int64
	rates Rates
}

// NewPlan builds a plan. All decisions derive from seed, so two plans with
// equal seed and rates inject identical faults.
func NewPlan(seed int64, rates Rates) *Plan {
	return &Plan{seed: seed, rates: rates}
}

// Enabled reports whether the plan can inject anything. Nil-safe.
func (p *Plan) Enabled() bool { return p != nil && p.rates.Any() }

// Rates returns the plan's rates (zero value for a nil plan).
func (p *Plan) Rates() Rates {
	if p == nil {
		return Rates{}
	}
	return p.rates
}

// Seed returns the plan's seed (0 for a nil plan). The journal records it
// so a resumed run can prove it replays the same fault plan.
func (p *Plan) Seed() int64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// ForApp scopes the plan to one measurement attempt of one app. Attempt
// numbers decorrelate retries. Returns nil for a nil or disabled plan, and
// every derived view tolerates a nil receiver, so callers thread a single
// pointer through without guarding.
func (p *Plan) ForApp(key string, attempt int) *AppFaults {
	if !p.Enabled() {
		return nil
	}
	return &AppFaults{plan: p, scope: key + "#" + strconv.Itoa(attempt)}
}

// AppFaults is the fault view of one app measurement attempt.
type AppFaults struct {
	plan  *Plan
	scope string
}

// rng derives the decision stream for one labeled fault. Fresh per call:
// decisions are order-independent and goroutine-safe.
func (a *AppFaults) rng(label string) *detrand.Source {
	return detrand.New(a.plan.seed).Child("fault/" + a.scope + "/" + label)
}

// DecryptFails reports a transient decryption failure for this attempt.
func (a *AppFaults) DecryptFails() bool {
	if a == nil {
		return false
	}
	return a.rng("decrypt").Bool(a.plan.rates.DecryptFail)
}

// NetTap returns the netem.FaultTap for one run leg ("baseline", "mitm",
// "hooked", ...). Nil for a nil receiver — and netem treats a nil tap as
// absent.
func (a *AppFaults) NetTap(run string) netem.FaultTap {
	if a == nil {
		return nil
	}
	return &netTap{af: a, run: run}
}

// Run returns the device-layer fault view for one run leg.
func (a *AppFaults) Run(run string) *RunFaults {
	if a == nil {
		return nil
	}
	return &RunFaults{af: a, run: run}
}

// ForgeTap returns the mitmproxy forge-fault decider for this attempt.
func (a *AppFaults) ForgeTap() *ForgeTap {
	if a == nil {
		return nil
	}
	return &ForgeTap{af: a}
}

// netTap implements netem.FaultTap with decisions keyed by run leg, host
// and dial time.
type netTap struct {
	af  *AppFaults
	run string
}

func connKey(run, host string, at float64) string {
	return run + "/" + host + "@" + strconv.FormatFloat(at, 'g', -1, 64)
}

// ConnFaults implements netem.FaultTap.
func (t *netTap) ConnFaults(host string, at float64) netem.ConnFaults {
	rates := t.af.plan.rates
	key := connKey(t.run, host, at)
	var cf netem.ConnFaults
	if rates.ConnReset > 0 {
		rng := t.af.rng("reset/" + key)
		if rng.Bool(rates.ConnReset) {
			// 1–4 records: always inside the handshake.
			cf.ResetAfter = 1 + rng.Intn(4)
		}
	}
	if rates.RecordDrop > 0 {
		af, dropRate := t.af, rates.RecordDrop
		cf.DropCaptureRecord = func(i int) bool {
			return af.rng("drop/" + key + "#" + strconv.Itoa(i)).Bool(dropRate)
		}
	}
	return cf
}

// RunFaults are the device-layer fault decisions for one run leg.
type RunFaults struct {
	af  *AppFaults
	run string
}

// TruncatedWindow reports whether (and where) the capture window is cut
// short for this run. Nil-safe.
func (r *RunFaults) TruncatedWindow(window float64) (float64, bool) {
	if r == nil {
		return window, false
	}
	rng := r.af.rng("trunc/" + r.run)
	if !rng.Bool(r.af.plan.rates.CaptureTrunc) {
		return window, false
	}
	// Keep 25–90% of the window: a truncation that leaves some signal.
	return window * (0.25 + 0.65*rng.Float64()), true
}

// CrashTime reports whether (and when) the app dies during this run.
// Nil-safe.
func (r *RunFaults) CrashTime(window float64) (float64, bool) {
	if r == nil {
		return 0, false
	}
	rng := r.af.rng("crash/" + r.run)
	if !rng.Bool(r.af.plan.rates.AppCrash) {
		return 0, false
	}
	return window * rng.Float64(), true
}

// ForgeTap decides transient mitmproxy leaf-forging failures.
type ForgeTap struct {
	af *AppFaults
}

// ForgeFails reports a transient forging error for host. Nil-safe.
func (f *ForgeTap) ForgeFails(host string) bool {
	if f == nil {
		return false
	}
	return f.af.rng("forge/" + host).Bool(f.af.plan.rates.ForgeFail)
}

// ErrTransient marks injected transient failures so retries can recognize
// them in logs.
func ErrTransient(kind, subject string) error {
	return fmt.Errorf("faultinject: transient %s failure: %s", kind, subject)
}

// ProcessKill is the power-cut fault family: unlike the transient faults
// above, which degrade a measurement, this one kills the whole process at
// a deterministic point so the crash-recovery path (journal replay,
// torn-tail truncation, resume) is exercised by the same machinery. The
// "cut" fires on the journal's append path — the only place where dying
// at the wrong instant can damage durable state.
type ProcessKill struct {
	// AfterResults is how many result frames reach the journal intact
	// before the cut: the append of frame AfterResults (0-based) is
	// interrupted.
	AfterResults int
	// TornBytes is how many bytes of the interrupted frame the cut leaves
	// on disk — 0 dies before any byte, a value past the frame length
	// means the frame happened to complete first. Recovery must truncate
	// whatever prefix remains.
	TornBytes int
}

// Tap returns the journal crash tap for this plan: a function of the
// result index alone, so the cut point is independent of worker
// scheduling. Nil receiver yields a nil tap (no cut).
func (k *ProcessKill) Tap() func(i int) (tornBytes int, kill bool) {
	if k == nil {
		return nil
	}
	return func(i int) (int, bool) {
		if i >= k.AfterResults {
			return k.TornBytes, true
		}
		return 0, false
	}
}

// ShardKill is the shard-death member of the power-cut family: it kills
// the worker holding one slice of a sharded run, by interrupting the
// append of result frame AfterResults (0-based, counted within that
// slice's journal) and leaving TornBytes of it on disk. The cut fires on
// the slice journal's append path via the same CrashTap machinery as
// ProcessKill, so it is a pure function of the frame index — independent
// of which worker holds the lease or how the scheduler interleaved them.
// The coordinator then expires the dead worker's lease and a survivor
// resumes the slice from its journal.
type ShardKill struct {
	// Slice is the 0-based slice whose holder dies.
	Slice int
	// AfterResults is how many result frames reach the slice journal
	// intact before the cut.
	AfterResults int
	// TornBytes is how many bytes of the interrupted frame remain on disk.
	TornBytes int
}

// Tap returns the slice journal's crash tap. Nil receiver yields nil.
func (k *ShardKill) Tap() func(i int) (tornBytes int, kill bool) {
	if k == nil {
		return nil
	}
	return (&ProcessKill{AfterResults: k.AfterResults, TornBytes: k.TornBytes}).Tap()
}

// LeaseExpiry induces a lease expiry without killing anyone: the worker
// holding Slice stalls after appending AfterResults result frames, for
// StallTicks of the coordinator's logical clock — past the lease TTL, so
// the slice is reassigned while the original holder is still alive. When
// the stalled worker wakes and tries to append again, the coordinator's
// epoch fence must turn it away. This is the split-brain drill: two live
// workers believing they own one slice.
type LeaseExpiry struct {
	// Slice is the 0-based slice whose lease is made to expire.
	Slice int
	// AfterResults is how many result frames the holder appends before
	// stalling.
	AfterResults int
	// StallTicks is how long the stall lasts on the logical clock;
	// 0 means "lease TTL + 1", guaranteeing expiry whatever the TTL.
	StallTicks int64
}

// ShardPlan groups the shard-death fault family for one sharded run. A
// nil plan injects nothing. At most one kill and one expiry apply per
// slice: like ProcessKill, each fires once — the takeover run of the same
// slice does not re-die, mirroring a machine that crashed and was
// replaced.
type ShardPlan struct {
	Kills    []ShardKill
	Expiries []LeaseExpiry
}

// Any reports whether the plan injects anything. Nil-safe.
func (p *ShardPlan) Any() bool {
	return p != nil && (len(p.Kills) > 0 || len(p.Expiries) > 0)
}

// KillFor returns the kill fault for slice, or nil. Nil-safe.
func (p *ShardPlan) KillFor(slice int) *ShardKill {
	if p == nil {
		return nil
	}
	for i := range p.Kills {
		if p.Kills[i].Slice == slice {
			return &p.Kills[i]
		}
	}
	return nil
}

// ExpiryFor returns the lease-expiry fault for slice, or nil. Nil-safe.
func (p *ShardPlan) ExpiryFor(slice int) *LeaseExpiry {
	if p == nil {
		return nil
	}
	for i := range p.Expiries {
		if p.Expiries[i].Slice == slice {
			return &p.Expiries[i]
		}
	}
	return nil
}

// DeriveShardPlan seeds a shard-death plan from (seed, rate): each slice
// independently draws whether its holder is killed and whether its lease
// is stalled into expiry, with the cut point and torn length drawn from
// the slice's item count. The chaos sweep uses this so rising fault rates
// kill shards too. Kills are capped at workers-1 so at least one worker
// survives to finish the run; rate 0 yields nil.
func DeriveShardPlan(seed int64, rate float64, workers int, sliceItems []int) *ShardPlan {
	if rate <= 0 {
		return nil
	}
	p := &ShardPlan{}
	kills := 0
	for slice, items := range sliceItems {
		if items == 0 {
			continue
		}
		rng := detrand.New(seed).Child("shardfault/" + strconv.Itoa(slice))
		if kills < workers-1 && rng.Bool(rate) {
			p.Kills = append(p.Kills, ShardKill{
				Slice:        slice,
				AfterResults: rng.Intn(items),
				TornBytes:    rng.Intn(24),
			})
			kills++
			continue
		}
		if rng.Bool(rate) {
			p.Expiries = append(p.Expiries, LeaseExpiry{
				Slice:        slice,
				AfterResults: 1 + rng.Intn(items),
			})
		}
	}
	if !p.Any() {
		return nil
	}
	return p
}
