// Package faultinject provides the study's deterministic fault-injection
// layer. The paper's measurement campaign was dominated by operational
// messiness — apps crashing mid-run, connections failing for reasons
// unrelated to pinning (§4.2.2's confounding failures), captures cut off by
// the 30 s window, iOS packages failing to decrypt — and the pipeline's
// robustness claims are only credible if it re-discovers ground truth
// *through* such faults, not in their absence.
//
// A Plan is seeded via internal/detrand and every decision is a pure
// function of (seed, scope label), never of shared mutable state or call
// order: the same app attempt sees the same faults regardless of worker
// scheduling, and a nil Plan (or all-zero Rates) injects nothing at all, so
// fault-free studies stay byte-identical to a build without this package.
//
// Scope hierarchy: Plan → ForApp(key, attempt) → per-run views. Keying the
// app scope by attempt number is what makes faults *transient*: a bounded
// retry of the same app rolls fresh, independent faults, exactly like
// rerunning a flaky app on the bench phone.
package faultinject

import (
	"fmt"
	"strconv"

	"pinscope/internal/detrand"
	"pinscope/internal/netem"
)

// Rates are per-fault injection probabilities in [0, 1].
type Rates struct {
	// ConnReset is the per-connection probability of a mid-handshake TCP
	// reset at the access link (netem layer).
	ConnReset float64
	// RecordDrop is the per-record probability that the monitoring tap
	// misses a record (pcap drop; netem layer).
	RecordDrop float64
	// CaptureTrunc is the per-run probability that the capture window is
	// cut short (device layer).
	CaptureTrunc float64
	// AppCrash is the per-run probability that the app dies mid-run
	// (device layer).
	AppCrash float64
	// DecryptFail is the per-attempt probability of a transient iOS
	// package-decryption failure (the paper's Appendix A obstacle).
	DecryptFail float64
	// ForgeFail is the per-host probability of a transient mitmproxy
	// leaf-forging error.
	ForgeFail float64
}

// Uniform sets every fault class to the same rate — the chaos-sweep knob.
func Uniform(rate float64) Rates {
	return Rates{
		ConnReset:    rate,
		RecordDrop:   rate,
		CaptureTrunc: rate,
		AppCrash:     rate,
		DecryptFail:  rate,
		ForgeFail:    rate,
	}
}

// Any reports whether any fault class has a positive rate.
func (r Rates) Any() bool {
	return r.ConnReset > 0 || r.RecordDrop > 0 || r.CaptureTrunc > 0 ||
		r.AppCrash > 0 || r.DecryptFail > 0 || r.ForgeFail > 0
}

// Plan is a seeded, fully reproducible fault plan for one study run.
type Plan struct {
	seed  int64
	rates Rates
}

// NewPlan builds a plan. All decisions derive from seed, so two plans with
// equal seed and rates inject identical faults.
func NewPlan(seed int64, rates Rates) *Plan {
	return &Plan{seed: seed, rates: rates}
}

// Enabled reports whether the plan can inject anything. Nil-safe.
func (p *Plan) Enabled() bool { return p != nil && p.rates.Any() }

// Rates returns the plan's rates (zero value for a nil plan).
func (p *Plan) Rates() Rates {
	if p == nil {
		return Rates{}
	}
	return p.rates
}

// Seed returns the plan's seed (0 for a nil plan). The journal records it
// so a resumed run can prove it replays the same fault plan.
func (p *Plan) Seed() int64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// ForApp scopes the plan to one measurement attempt of one app. Attempt
// numbers decorrelate retries. Returns nil for a nil or disabled plan, and
// every derived view tolerates a nil receiver, so callers thread a single
// pointer through without guarding.
func (p *Plan) ForApp(key string, attempt int) *AppFaults {
	if !p.Enabled() {
		return nil
	}
	return &AppFaults{plan: p, scope: key + "#" + strconv.Itoa(attempt)}
}

// AppFaults is the fault view of one app measurement attempt.
type AppFaults struct {
	plan  *Plan
	scope string
}

// rng derives the decision stream for one labeled fault. Fresh per call:
// decisions are order-independent and goroutine-safe.
func (a *AppFaults) rng(label string) *detrand.Source {
	return detrand.New(a.plan.seed).Child("fault/" + a.scope + "/" + label)
}

// DecryptFails reports a transient decryption failure for this attempt.
func (a *AppFaults) DecryptFails() bool {
	if a == nil {
		return false
	}
	return a.rng("decrypt").Bool(a.plan.rates.DecryptFail)
}

// NetTap returns the netem.FaultTap for one run leg ("baseline", "mitm",
// "hooked", ...). Nil for a nil receiver — and netem treats a nil tap as
// absent.
func (a *AppFaults) NetTap(run string) netem.FaultTap {
	if a == nil {
		return nil
	}
	return &netTap{af: a, run: run}
}

// Run returns the device-layer fault view for one run leg.
func (a *AppFaults) Run(run string) *RunFaults {
	if a == nil {
		return nil
	}
	return &RunFaults{af: a, run: run}
}

// ForgeTap returns the mitmproxy forge-fault decider for this attempt.
func (a *AppFaults) ForgeTap() *ForgeTap {
	if a == nil {
		return nil
	}
	return &ForgeTap{af: a}
}

// netTap implements netem.FaultTap with decisions keyed by run leg, host
// and dial time.
type netTap struct {
	af  *AppFaults
	run string
}

func connKey(run, host string, at float64) string {
	return run + "/" + host + "@" + strconv.FormatFloat(at, 'g', -1, 64)
}

// ConnFaults implements netem.FaultTap.
func (t *netTap) ConnFaults(host string, at float64) netem.ConnFaults {
	rates := t.af.plan.rates
	key := connKey(t.run, host, at)
	var cf netem.ConnFaults
	if rates.ConnReset > 0 {
		rng := t.af.rng("reset/" + key)
		if rng.Bool(rates.ConnReset) {
			// 1–4 records: always inside the handshake.
			cf.ResetAfter = 1 + rng.Intn(4)
		}
	}
	if rates.RecordDrop > 0 {
		af, dropRate := t.af, rates.RecordDrop
		cf.DropCaptureRecord = func(i int) bool {
			return af.rng("drop/" + key + "#" + strconv.Itoa(i)).Bool(dropRate)
		}
	}
	return cf
}

// RunFaults are the device-layer fault decisions for one run leg.
type RunFaults struct {
	af  *AppFaults
	run string
}

// TruncatedWindow reports whether (and where) the capture window is cut
// short for this run. Nil-safe.
func (r *RunFaults) TruncatedWindow(window float64) (float64, bool) {
	if r == nil {
		return window, false
	}
	rng := r.af.rng("trunc/" + r.run)
	if !rng.Bool(r.af.plan.rates.CaptureTrunc) {
		return window, false
	}
	// Keep 25–90% of the window: a truncation that leaves some signal.
	return window * (0.25 + 0.65*rng.Float64()), true
}

// CrashTime reports whether (and when) the app dies during this run.
// Nil-safe.
func (r *RunFaults) CrashTime(window float64) (float64, bool) {
	if r == nil {
		return 0, false
	}
	rng := r.af.rng("crash/" + r.run)
	if !rng.Bool(r.af.plan.rates.AppCrash) {
		return 0, false
	}
	return window * rng.Float64(), true
}

// ForgeTap decides transient mitmproxy leaf-forging failures.
type ForgeTap struct {
	af *AppFaults
}

// ForgeFails reports a transient forging error for host. Nil-safe.
func (f *ForgeTap) ForgeFails(host string) bool {
	if f == nil {
		return false
	}
	return f.af.rng("forge/" + host).Bool(f.af.plan.rates.ForgeFail)
}

// ErrTransient marks injected transient failures so retries can recognize
// them in logs.
func ErrTransient(kind, subject string) error {
	return fmt.Errorf("faultinject: transient %s failure: %s", kind, subject)
}

// ProcessKill is the power-cut fault family: unlike the transient faults
// above, which degrade a measurement, this one kills the whole process at
// a deterministic point so the crash-recovery path (journal replay,
// torn-tail truncation, resume) is exercised by the same machinery. The
// "cut" fires on the journal's append path — the only place where dying
// at the wrong instant can damage durable state.
type ProcessKill struct {
	// AfterResults is how many result frames reach the journal intact
	// before the cut: the append of frame AfterResults (0-based) is
	// interrupted.
	AfterResults int
	// TornBytes is how many bytes of the interrupted frame the cut leaves
	// on disk — 0 dies before any byte, a value past the frame length
	// means the frame happened to complete first. Recovery must truncate
	// whatever prefix remains.
	TornBytes int
}

// Tap returns the journal crash tap for this plan: a function of the
// result index alone, so the cut point is independent of worker
// scheduling. Nil receiver yields a nil tap (no cut).
func (k *ProcessKill) Tap() func(i int) (tornBytes int, kill bool) {
	if k == nil {
		return nil
	}
	return func(i int) (int, bool) {
		if i >= k.AfterResults {
			return k.TornBytes, true
		}
		return 0, false
	}
}

// ShardKill is the shard-death member of the power-cut family: it kills
// the worker holding one slice of a sharded run, by interrupting the
// append of result frame AfterResults (0-based, counted within that
// slice's journal) and leaving TornBytes of it on disk. The cut fires on
// the slice journal's append path via the same CrashTap machinery as
// ProcessKill, so it is a pure function of the frame index — independent
// of which worker holds the lease or how the scheduler interleaved them.
// The coordinator then expires the dead worker's lease and a survivor
// resumes the slice from its journal.
type ShardKill struct {
	// Slice is the 0-based slice whose holder dies.
	Slice int
	// AfterResults is how many result frames reach the slice journal
	// intact before the cut.
	AfterResults int
	// TornBytes is how many bytes of the interrupted frame remain on disk.
	TornBytes int
}

// Tap returns the slice journal's crash tap. Nil receiver yields nil.
func (k *ShardKill) Tap() func(i int) (tornBytes int, kill bool) {
	if k == nil {
		return nil
	}
	return (&ProcessKill{AfterResults: k.AfterResults, TornBytes: k.TornBytes}).Tap()
}

// LeaseExpiry induces a lease expiry without killing anyone: the worker
// holding Slice stalls after appending AfterResults result frames, for
// StallTicks of the coordinator's logical clock — past the lease TTL, so
// the slice is reassigned while the original holder is still alive. When
// the stalled worker wakes and tries to append again, the coordinator's
// epoch fence must turn it away. This is the split-brain drill: two live
// workers believing they own one slice.
type LeaseExpiry struct {
	// Slice is the 0-based slice whose lease is made to expire.
	Slice int
	// AfterResults is how many result frames the holder appends before
	// stalling.
	AfterResults int
	// StallTicks is how long the stall lasts on the logical clock;
	// 0 means "lease TTL + 1", guaranteeing expiry whatever the TTL.
	StallTicks int64
}

// NetTTL is the lease TTL, in logical network ticks, that the simulated
// transport (internal/shardnet) uses by default. Network fault durations
// are drawn relative to it so a derived delay or partition is guaranteed
// to straddle at least one lease deadline — short enough to heal, long
// enough that the takeover machinery actually fires.
const NetTTL = 64

// NetDelay holds one slice's result frame in flight for Ticks of the
// network clock while later frames (heartbeats included) overtake it —
// the reordering drill: the lease must survive on heartbeats alone and
// the coordinator must not write the late frame out of order.
type NetDelay struct {
	// Slice and Item name the result frame that is delayed.
	Slice int
	Item  int
	// Ticks is the extra in-flight time on the network's logical clock.
	Ticks int64
}

// NetDrop silently discards one slice's result frame and severs the
// connection that carried it — a reliable stream is in-order-or-dead, so
// a lost frame means a dead conn. The worker must reconnect with backoff
// and be re-granted the slice at its resume point.
type NetDrop struct {
	Slice int
	Item  int
}

// NetDup delivers one slice's result frame twice. The coordinator must
// admit it exactly once: the duplicate arrives after the original has
// advanced the slice cursor and is discarded as already-journaled.
type NetDup struct {
	Slice int
	Item  int
}

// NetPartition silently drops every frame, both directions, on the
// connection holding Slice — starting when the holder sends result frame
// AfterItem — for Ticks of the network clock. Neither side learns the
// link is gone; only heartbeat silence does: the lease expires, a
// survivor takes over, and the healed zombie's stale-epoch frames must be
// fenced away from the slice WAL.
type NetPartition struct {
	Slice     int
	AfterItem int
	Ticks     int64
}

// NetChaos groups the network fault family for one transported sharded
// run. A nil chaos injects nothing; all accessors are nil-safe. At most
// one fault of each kind applies per slice and each fires once.
type NetChaos struct {
	Delays     []NetDelay
	Drops      []NetDrop
	Dups       []NetDup
	Partitions []NetPartition
}

// Any reports whether the chaos injects anything. Nil-safe.
func (n *NetChaos) Any() bool {
	return n != nil && (len(n.Delays) > 0 || len(n.Drops) > 0 ||
		len(n.Dups) > 0 || len(n.Partitions) > 0)
}

// Faults counts the injected network faults. Nil-safe.
func (n *NetChaos) Faults() int {
	if n == nil {
		return 0
	}
	return len(n.Delays) + len(n.Drops) + len(n.Dups) + len(n.Partitions)
}

// DelayFor returns the in-flight delay for (slice, item), or 0, false.
// Nil-safe.
func (n *NetChaos) DelayFor(slice, item int) (int64, bool) {
	if n == nil {
		return 0, false
	}
	for _, d := range n.Delays {
		if d.Slice == slice && d.Item == item {
			return d.Ticks, true
		}
	}
	return 0, false
}

// DropFor reports whether the result frame (slice, item) is dropped
// (severing its connection). Nil-safe.
func (n *NetChaos) DropFor(slice, item int) bool {
	if n == nil {
		return false
	}
	for _, d := range n.Drops {
		if d.Slice == slice && d.Item == item {
			return true
		}
	}
	return false
}

// DupFor reports whether the result frame (slice, item) is delivered
// twice. Nil-safe.
func (n *NetChaos) DupFor(slice, item int) bool {
	if n == nil {
		return false
	}
	for _, d := range n.Dups {
		if d.Slice == slice && d.Item == item {
			return true
		}
	}
	return false
}

// PartitionFor returns the partition starting at result frame
// (slice, item), or 0, false. Nil-safe.
func (n *NetChaos) PartitionFor(slice, item int) (int64, bool) {
	if n == nil {
		return 0, false
	}
	for _, p := range n.Partitions {
		if p.Slice == slice && p.AfterItem == item {
			return p.Ticks, true
		}
	}
	return 0, false
}

// ShardPlan groups the shard-death fault family for one sharded run. A
// nil plan injects nothing. At most one kill and one expiry apply per
// slice: like ProcessKill, each fires once — the takeover run of the same
// slice does not re-die, mirroring a machine that crashed and was
// replaced. Net carries the network fault family for transported runs
// (internal/shardnet); the in-process coordinator ignores it.
type ShardPlan struct {
	Kills    []ShardKill
	Expiries []LeaseExpiry
	Net      *NetChaos
}

// Any reports whether the plan injects anything. Nil-safe.
func (p *ShardPlan) Any() bool {
	return p != nil && (len(p.Kills) > 0 || len(p.Expiries) > 0 || p.Net.Any())
}

// KillFor returns the kill fault for slice, or nil. Nil-safe.
func (p *ShardPlan) KillFor(slice int) *ShardKill {
	if p == nil {
		return nil
	}
	for i := range p.Kills {
		if p.Kills[i].Slice == slice {
			return &p.Kills[i]
		}
	}
	return nil
}

// ExpiryFor returns the lease-expiry fault for slice, or nil. Nil-safe.
func (p *ShardPlan) ExpiryFor(slice int) *LeaseExpiry {
	if p == nil {
		return nil
	}
	for i := range p.Expiries {
		if p.Expiries[i].Slice == slice {
			return &p.Expiries[i]
		}
	}
	return nil
}

// NetFaults returns the plan's network chaos (nil for a nil plan).
// Nil-safe, like every other accessor on the plan.
func (p *ShardPlan) NetFaults() *NetChaos {
	if p == nil {
		return nil
	}
	return p.Net
}

// DeriveShardPlan seeds a shard-death-and-network plan from (seed, rate):
// each slice independently draws whether its holder is killed, whether
// its lease is stalled into expiry, and which network pathologies (delay,
// drop, duplicate delivery, partition) hit its result stream, with every
// cut point drawn from the slice's item count. The chaos sweep uses this
// so rising fault rates kill shards and degrade the wire too.
//
// Progress caps: kills stay capped at workers-1 so at least one worker
// survives, and the progress-hampering faults — kills, drops (they sever
// the holder's connection) and partitions — together touch at most
// len(sliceItems)-1 slices, so at least one shard always makes progress
// on a never-severed link. Delay durations and partition windows are
// drawn relative to NetTTL so they straddle a lease deadline. Rate 0
// yields nil.
func DeriveShardPlan(seed int64, rate float64, workers int, sliceItems []int) *ShardPlan {
	if rate <= 0 {
		return nil
	}
	p := &ShardPlan{}
	net := &NetChaos{}
	kills := 0
	hampered := 0
	maxHampered := len(sliceItems) - 1
	for slice, items := range sliceItems {
		if items == 0 {
			continue
		}
		rng := detrand.New(seed).Child("shardfault/" + strconv.Itoa(slice))
		killed := false
		if kills < workers-1 && hampered < maxHampered && rng.Bool(rate) {
			p.Kills = append(p.Kills, ShardKill{
				Slice:        slice,
				AfterResults: rng.Intn(items),
				TornBytes:    rng.Intn(24),
			})
			kills++
			hampered++
			killed = true
		}
		if !killed && items >= 2 && rng.Bool(rate) {
			// The stall point stays strictly inside the leased region:
			// [1, items-1]. A stall after the final append would sit
			// between the work and the lease release, which the
			// coordinator no longer honors (see shardcoord.maybeStall).
			p.Expiries = append(p.Expiries, LeaseExpiry{
				Slice:        slice,
				AfterResults: 1 + rng.Intn(items-1),
			})
		}
		// Network family, drawn from its own child so adding it leaves
		// the kill/expiry draws of existing seeds untouched.
		nrng := detrand.New(seed).Child("netfault/" + strconv.Itoa(slice))
		if nrng.Bool(rate) {
			net.Delays = append(net.Delays, NetDelay{
				Slice: slice,
				Item:  nrng.Intn(items),
				Ticks: NetTTL/2 + int64(nrng.Intn(2*NetTTL)),
			})
		}
		if nrng.Bool(rate) {
			net.Dups = append(net.Dups, NetDup{Slice: slice, Item: nrng.Intn(items)})
		}
		if !killed && hampered < maxHampered && nrng.Bool(rate) {
			net.Drops = append(net.Drops, NetDrop{Slice: slice, Item: nrng.Intn(items)})
			hampered++
		} else if !killed && hampered < maxHampered && nrng.Bool(rate) {
			net.Partitions = append(net.Partitions, NetPartition{
				Slice:     slice,
				AfterItem: nrng.Intn(items),
				Ticks:     NetTTL + int64(nrng.Intn(2*NetTTL)),
			})
			hampered++
		}
	}
	if net.Any() {
		p.Net = net
	}
	if !p.Any() {
		return nil
	}
	return p
}
