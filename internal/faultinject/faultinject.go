// Package faultinject provides the study's deterministic fault-injection
// layer. The paper's measurement campaign was dominated by operational
// messiness — apps crashing mid-run, connections failing for reasons
// unrelated to pinning (§4.2.2's confounding failures), captures cut off by
// the 30 s window, iOS packages failing to decrypt — and the pipeline's
// robustness claims are only credible if it re-discovers ground truth
// *through* such faults, not in their absence.
//
// A Plan is seeded via internal/detrand and every decision is a pure
// function of (seed, scope label), never of shared mutable state or call
// order: the same app attempt sees the same faults regardless of worker
// scheduling, and a nil Plan (or all-zero Rates) injects nothing at all, so
// fault-free studies stay byte-identical to a build without this package.
//
// Scope hierarchy: Plan → ForApp(key, attempt) → per-run views. Keying the
// app scope by attempt number is what makes faults *transient*: a bounded
// retry of the same app rolls fresh, independent faults, exactly like
// rerunning a flaky app on the bench phone.
package faultinject

import (
	"fmt"
	"strconv"

	"pinscope/internal/detrand"
	"pinscope/internal/netem"
)

// Rates are per-fault injection probabilities in [0, 1].
type Rates struct {
	// ConnReset is the per-connection probability of a mid-handshake TCP
	// reset at the access link (netem layer).
	ConnReset float64
	// RecordDrop is the per-record probability that the monitoring tap
	// misses a record (pcap drop; netem layer).
	RecordDrop float64
	// CaptureTrunc is the per-run probability that the capture window is
	// cut short (device layer).
	CaptureTrunc float64
	// AppCrash is the per-run probability that the app dies mid-run
	// (device layer).
	AppCrash float64
	// DecryptFail is the per-attempt probability of a transient iOS
	// package-decryption failure (the paper's Appendix A obstacle).
	DecryptFail float64
	// ForgeFail is the per-host probability of a transient mitmproxy
	// leaf-forging error.
	ForgeFail float64
}

// Uniform sets every fault class to the same rate — the chaos-sweep knob.
func Uniform(rate float64) Rates {
	return Rates{
		ConnReset:    rate,
		RecordDrop:   rate,
		CaptureTrunc: rate,
		AppCrash:     rate,
		DecryptFail:  rate,
		ForgeFail:    rate,
	}
}

// Any reports whether any fault class has a positive rate.
func (r Rates) Any() bool {
	return r.ConnReset > 0 || r.RecordDrop > 0 || r.CaptureTrunc > 0 ||
		r.AppCrash > 0 || r.DecryptFail > 0 || r.ForgeFail > 0
}

// Plan is a seeded, fully reproducible fault plan for one study run.
type Plan struct {
	seed  int64
	rates Rates
}

// NewPlan builds a plan. All decisions derive from seed, so two plans with
// equal seed and rates inject identical faults.
func NewPlan(seed int64, rates Rates) *Plan {
	return &Plan{seed: seed, rates: rates}
}

// Enabled reports whether the plan can inject anything. Nil-safe.
func (p *Plan) Enabled() bool { return p != nil && p.rates.Any() }

// Rates returns the plan's rates (zero value for a nil plan).
func (p *Plan) Rates() Rates {
	if p == nil {
		return Rates{}
	}
	return p.rates
}

// Seed returns the plan's seed (0 for a nil plan). The journal records it
// so a resumed run can prove it replays the same fault plan.
func (p *Plan) Seed() int64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// ForApp scopes the plan to one measurement attempt of one app. Attempt
// numbers decorrelate retries. Returns nil for a nil or disabled plan, and
// every derived view tolerates a nil receiver, so callers thread a single
// pointer through without guarding.
func (p *Plan) ForApp(key string, attempt int) *AppFaults {
	if !p.Enabled() {
		return nil
	}
	return &AppFaults{plan: p, scope: key + "#" + strconv.Itoa(attempt)}
}

// AppFaults is the fault view of one app measurement attempt.
type AppFaults struct {
	plan  *Plan
	scope string
}

// rng derives the decision stream for one labeled fault. Fresh per call:
// decisions are order-independent and goroutine-safe.
func (a *AppFaults) rng(label string) *detrand.Source {
	return detrand.New(a.plan.seed).Child("fault/" + a.scope + "/" + label)
}

// DecryptFails reports a transient decryption failure for this attempt.
func (a *AppFaults) DecryptFails() bool {
	if a == nil {
		return false
	}
	return a.rng("decrypt").Bool(a.plan.rates.DecryptFail)
}

// NetTap returns the netem.FaultTap for one run leg ("baseline", "mitm",
// "hooked", ...). Nil for a nil receiver — and netem treats a nil tap as
// absent.
func (a *AppFaults) NetTap(run string) netem.FaultTap {
	if a == nil {
		return nil
	}
	return &netTap{af: a, run: run}
}

// Run returns the device-layer fault view for one run leg.
func (a *AppFaults) Run(run string) *RunFaults {
	if a == nil {
		return nil
	}
	return &RunFaults{af: a, run: run}
}

// ForgeTap returns the mitmproxy forge-fault decider for this attempt.
func (a *AppFaults) ForgeTap() *ForgeTap {
	if a == nil {
		return nil
	}
	return &ForgeTap{af: a}
}

// netTap implements netem.FaultTap with decisions keyed by run leg, host
// and dial time.
type netTap struct {
	af  *AppFaults
	run string
}

func connKey(run, host string, at float64) string {
	return run + "/" + host + "@" + strconv.FormatFloat(at, 'g', -1, 64)
}

// ConnFaults implements netem.FaultTap.
func (t *netTap) ConnFaults(host string, at float64) netem.ConnFaults {
	rates := t.af.plan.rates
	key := connKey(t.run, host, at)
	var cf netem.ConnFaults
	if rates.ConnReset > 0 {
		rng := t.af.rng("reset/" + key)
		if rng.Bool(rates.ConnReset) {
			// 1–4 records: always inside the handshake.
			cf.ResetAfter = 1 + rng.Intn(4)
		}
	}
	if rates.RecordDrop > 0 {
		af, dropRate := t.af, rates.RecordDrop
		cf.DropCaptureRecord = func(i int) bool {
			return af.rng("drop/" + key + "#" + strconv.Itoa(i)).Bool(dropRate)
		}
	}
	return cf
}

// RunFaults are the device-layer fault decisions for one run leg.
type RunFaults struct {
	af  *AppFaults
	run string
}

// TruncatedWindow reports whether (and where) the capture window is cut
// short for this run. Nil-safe.
func (r *RunFaults) TruncatedWindow(window float64) (float64, bool) {
	if r == nil {
		return window, false
	}
	rng := r.af.rng("trunc/" + r.run)
	if !rng.Bool(r.af.plan.rates.CaptureTrunc) {
		return window, false
	}
	// Keep 25–90% of the window: a truncation that leaves some signal.
	return window * (0.25 + 0.65*rng.Float64()), true
}

// CrashTime reports whether (and when) the app dies during this run.
// Nil-safe.
func (r *RunFaults) CrashTime(window float64) (float64, bool) {
	if r == nil {
		return 0, false
	}
	rng := r.af.rng("crash/" + r.run)
	if !rng.Bool(r.af.plan.rates.AppCrash) {
		return 0, false
	}
	return window * rng.Float64(), true
}

// ForgeTap decides transient mitmproxy leaf-forging failures.
type ForgeTap struct {
	af *AppFaults
}

// ForgeFails reports a transient forging error for host. Nil-safe.
func (f *ForgeTap) ForgeFails(host string) bool {
	if f == nil {
		return false
	}
	return f.af.rng("forge/" + host).Bool(f.af.plan.rates.ForgeFail)
}

// ErrTransient marks injected transient failures so retries can recognize
// them in logs.
func ErrTransient(kind, subject string) error {
	return fmt.Errorf("faultinject: transient %s failure: %s", kind, subject)
}

// ProcessKill is the power-cut fault family: unlike the transient faults
// above, which degrade a measurement, this one kills the whole process at
// a deterministic point so the crash-recovery path (journal replay,
// torn-tail truncation, resume) is exercised by the same machinery. The
// "cut" fires on the journal's append path — the only place where dying
// at the wrong instant can damage durable state.
type ProcessKill struct {
	// AfterResults is how many result frames reach the journal intact
	// before the cut: the append of frame AfterResults (0-based) is
	// interrupted.
	AfterResults int
	// TornBytes is how many bytes of the interrupted frame the cut leaves
	// on disk — 0 dies before any byte, a value past the frame length
	// means the frame happened to complete first. Recovery must truncate
	// whatever prefix remains.
	TornBytes int
}

// Tap returns the journal crash tap for this plan: a function of the
// result index alone, so the cut point is independent of worker
// scheduling. Nil receiver yields a nil tap (no cut).
func (k *ProcessKill) Tap() func(i int) (tornBytes int, kill bool) {
	if k == nil {
		return nil
	}
	return func(i int) (int, bool) {
		if i >= k.AfterResults {
			return k.TornBytes, true
		}
		return 0, false
	}
}
