package detrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestChildIndependence(t *testing.T) {
	root := New(7)
	// Consuming from one child must not perturb a sibling.
	c1 := root.Child("a")
	want := make([]uint64, 10)
	for i := range want {
		want[i] = c1.Uint64()
	}

	root2 := New(7)
	other := root2.Child("b")
	for i := 0; i < 1000; i++ {
		other.Uint64()
	}
	c1b := root2.Child("a")
	for i := range want {
		if got := c1b.Uint64(); got != want[i] {
			t.Fatalf("child stream not independent at %d: got %d want %d", i, got, want[i])
		}
	}
}

func TestChildLabelsDistinct(t *testing.T) {
	root := New(3)
	if root.Child("x").Uint64() == root.Child("y").Uint64() {
		t.Fatal("distinct labels produced identical first values")
	}
	if root.ChildN("x", 1).Uint64() == root.ChildN("x", 2).Uint64() {
		t.Fatal("distinct indices produced identical first values")
	}
}

func TestIntnRange(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		v := s.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	s := New(13)
	const n = 100000
	var sum float64
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		f := s.Float64()
		sum += f
		buckets[int(f*10)]++
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %v too far from 0.5", mean)
	}
	for i, c := range buckets {
		if math.Abs(float64(c)-n/10) > n/10*0.1 {
			t.Fatalf("bucket %d has %d samples, expected ~%d", i, c, n/10)
		}
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(17)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolRate(t *testing.T) {
	s := New(19)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate %v", rate)
	}
}

func TestWeightedIndex(t *testing.T) {
	s := New(23)
	w := []float64{0, 1, 3, 0, 6}
	counts := make([]int, len(w))
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.WeightedIndex(w)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Fatalf("zero-weight index chosen: %v", counts)
	}
	// Expect roughly 10% / 30% / 60%.
	if math.Abs(float64(counts[1])/n-0.1) > 0.02 {
		t.Fatalf("index 1 rate %v", float64(counts[1])/n)
	}
	if math.Abs(float64(counts[4])/n-0.6) > 0.02 {
		t.Fatalf("index 4 rate %v", float64(counts[4])/n)
	}
}

func TestWeightedIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero total weight")
		}
	}()
	New(1).WeightedIndex([]float64{0, 0})
}

func TestShuffleIsPermutation(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		s := New(seed)
		items := make([]int, int(n))
		for i := range items {
			items[i] = i
		}
		Shuffle(s, items)
		seen := make(map[int]bool, len(items))
		for _, v := range items {
			if v < 0 || v >= len(items) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(seen) == len(items)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSample(t *testing.T) {
	s := New(29)
	items := []string{"a", "b", "c", "d", "e"}
	got := Sample(s, items, 3)
	if len(got) != 3 {
		t.Fatalf("Sample returned %d items", len(got))
	}
	seen := map[string]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate %q in sample", v)
		}
		seen[v] = true
	}
	// Oversized k returns everything.
	if got := Sample(s, items, 10); len(got) != 5 {
		t.Fatalf("oversized Sample returned %d items", len(got))
	}
	// Input not modified.
	if items[0] != "a" || items[4] != "e" {
		t.Fatal("Sample modified its input")
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(31)
	const n = 50000
	var sum int
	for i := 0; i < n; i++ {
		sum += s.Poisson(3.5)
	}
	mean := float64(sum) / n
	if math.Abs(mean-3.5) > 0.1 {
		t.Fatalf("Poisson(3.5) sample mean %v", mean)
	}
	if s.Poisson(0) != 0 || s.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive lambda should be 0")
	}
}

func TestNormIntClamps(t *testing.T) {
	s := New(37)
	for i := 0; i < 10000; i++ {
		v := s.NormInt(5, 3, 2, 8)
		if v < 2 || v > 8 {
			t.Fatalf("NormInt out of clamp range: %d", v)
		}
	}
}

func TestReadAlwaysSucceeds(t *testing.T) {
	s := New(41)
	sizes := []int{0, 1, 31, 32, 33, 100, 4096}
	for _, n := range sizes {
		buf := make([]byte, n)
		got, err := s.Read(buf)
		if err != nil || got != n {
			t.Fatalf("Read(%d) = %d, %v", n, got, err)
		}
	}
}

func TestReadStreamMatchesChunking(t *testing.T) {
	// Reading 64 bytes at once equals reading 64 bytes in odd chunks.
	a := New(43)
	whole := make([]byte, 64)
	a.Read(whole)

	b := New(43)
	parts := make([]byte, 0, 64)
	for _, n := range []int{1, 7, 13, 32, 11} {
		chunk := make([]byte, n)
		b.Read(chunk)
		parts = append(parts, chunk...)
	}
	for i := range whole {
		if whole[i] != parts[i] {
			t.Fatalf("stream mismatch at byte %d", i)
		}
	}
}

func TestPick(t *testing.T) {
	s := New(47)
	items := []int{10, 20, 30}
	counts := map[int]int{}
	for i := 0; i < 3000; i++ {
		counts[Pick(s, items)]++
	}
	for _, v := range items {
		if counts[v] < 800 {
			t.Fatalf("Pick heavily skewed: %v", counts)
		}
	}
}

// --- edge tests: ISSUE 3 satellite (d) ---

// TestFloat64UpperBoundary: Float64 is built as k/2^53 with k < 2^53, so
// the largest value the construction can emit is (2^53-1)/2^53. Verify
// that bound is strictly below 1 and that a large sample never crosses it.
func TestFloat64UpperBoundary(t *testing.T) {
	const maxEmittable = float64(1<<53-1) / (1 << 53)
	if maxEmittable >= 1 {
		t.Fatalf("construction bound (2^53-1)/2^53 = %v not < 1", maxEmittable)
	}
	s := New(53)
	for i := 0; i < 200000; i++ {
		if f := s.Float64(); f < 0 || f > maxEmittable {
			t.Fatalf("Float64() = %v outside [0, (2^53-1)/2^53]", f)
		}
	}
}

// TestChildLabelConcatenationCollision: derivation must depend on label
// boundaries, not just the concatenated bytes. ("ab" then "c") and ("a"
// then "bc") concatenate identically; so does the single label "abc". All
// three must be independent streams.
func TestChildLabelConcatenationCollision(t *testing.T) {
	root := New(61)
	streams := map[string]*Source{
		`Child("ab").Child("c")`: root.Child("ab").Child("c"),
		`Child("a").Child("bc")`: root.Child("a").Child("bc"),
		`Child("abc")`:           root.Child("abc"),
	}
	firsts := map[uint64]string{}
	for name, s := range streams {
		v := s.Uint64()
		if prev, dup := firsts[v]; dup {
			t.Fatalf("label collision: %s and %s start with identical value %d", prev, name, v)
		}
		firsts[v] = name
	}
}

// TestRefillBoundary: the internal buffer is 32 bytes; reads that land
// exactly on, just before, and just after the refill edge must all splice
// into the same contiguous stream.
func TestRefillBoundary(t *testing.T) {
	want := make([]byte, 96)
	New(67).Read(want)

	chunkings := [][]int{
		{32, 32, 32},       // every read lands exactly on the edge
		{31, 1, 32, 1, 31}, // reads end one byte before and after the edge
		{1, 31, 33, 31},    // a read spanning a whole refill
		{64, 32},           // multi-block reads
	}
	for _, chunks := range chunkings {
		s := New(67)
		got := make([]byte, 0, 96)
		for _, n := range chunks {
			b := make([]byte, n)
			s.Read(b)
			got = append(got, b...)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("chunking %v diverges at byte %d", chunks, i)
			}
		}
	}

	// A Uint64 whose 8 bytes straddle the 32-byte edge must equal the
	// corresponding bytes of the contiguous stream.
	s := New(67)
	skip := make([]byte, 28)
	s.Read(skip)
	straddling := s.Uint64()
	var expect uint64
	for i := 28; i < 36; i++ {
		expect = expect<<8 | uint64(want[i])
	}
	if straddling != expect {
		t.Fatalf("Uint64 across refill edge = %#x, contiguous stream says %#x", straddling, expect)
	}
}
