// Package detrand provides deterministic, hierarchically derivable
// randomness for the pinscope simulation.
//
// Every random decision in the generated world flows through a *Source
// derived from a single root seed, so a world is reproducible bit-for-bit
// across runs and platforms. Sources form a tree: Child("apps").Child("42")
// always yields the same stream regardless of what other parts of the
// program consumed. The derivation function is SHA-256 over the parent seed
// and the child label, so streams for distinct labels are independent.
//
// A Source is not safe for concurrent use; derive one child per goroutine.
package detrand

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"strconv"
)

// Source is a deterministic pseudo-random stream with hierarchical
// derivation. The generator is SHA-256 in counter mode over a 32-byte seed,
// which is more than adequate statistically and keeps derivation and
// generation in one primitive.
type Source struct {
	seed [32]byte
	ctr  uint64
	buf  [32]byte
	off  int
}

// New returns the root Source for the given seed.
func New(seed int64) *Source {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(seed))
	s := &Source{seed: sha256.Sum256(b[:])}
	s.off = len(s.buf) // force refill on first use
	return s
}

// Child derives an independent Source labeled by name. Deriving the same
// name twice yields identical streams; distinct names yield independent
// streams.
func (s *Source) Child(name string) *Source {
	h := sha256.New()
	h.Write(s.seed[:])
	h.Write([]byte{0x1f}) // domain separator between seed and label
	h.Write([]byte(name))
	c := &Source{}
	copy(c.seed[:], h.Sum(nil))
	c.off = len(c.buf)
	return c
}

// ChildN derives a child labeled by an integer, for per-index streams.
func (s *Source) ChildN(name string, n int) *Source {
	return s.Child(name + "#" + strconv.Itoa(n))
}

func (s *Source) refill() {
	var b [40]byte
	copy(b[:32], s.seed[:])
	binary.BigEndian.PutUint64(b[32:], s.ctr)
	s.ctr++
	s.buf = sha256.Sum256(b[:])
	s.off = 0
}

// Read fills p with deterministic pseudo-random bytes. It never fails; the
// error is always nil so a Source can serve as an io.Reader for
// deterministic key generation.
func (s *Source) Read(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if s.off == len(s.buf) {
			s.refill()
		}
		c := copy(p, s.buf[s.off:])
		s.off += c
		p = p[c:]
	}
	return n, nil
}

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Source) Uint64() uint64 {
	var b [8]byte
	s.Read(b[:])
	return binary.BigEndian.Uint64(b[:])
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("detrand: Intn with non-positive n")
	}
	// Rejection sampling to avoid modulo bias.
	bound := uint64(n)
	limit := math.MaxUint64 - math.MaxUint64%bound
	for {
		v := s.Uint64()
		if v < limit {
			return int(v % bound)
		}
	}
}

// Int63 returns a non-negative 63-bit value.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Float64 returns a uniformly distributed value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Pick returns a uniformly chosen element of items. It panics on an empty
// slice.
func Pick[T any](s *Source, items []T) T {
	return items[s.Intn(len(items))]
}

// Shuffle permutes items in place (Fisher–Yates).
func Shuffle[T any](s *Source, items []T) {
	for i := len(items) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		items[i], items[j] = items[j], items[i]
	}
}

// Sample returns k distinct elements drawn without replacement. If k exceeds
// len(items) the whole (shuffled) slice is returned. The input is not
// modified.
func Sample[T any](s *Source, items []T, k int) []T {
	cp := make([]T, len(items))
	copy(cp, items)
	Shuffle(s, cp)
	if k > len(cp) {
		k = len(cp)
	}
	return cp[:k]
}

// WeightedIndex picks an index with probability proportional to weights[i].
// Zero-weight entries are never chosen. It panics if the total weight is not
// positive.
func (s *Source) WeightedIndex(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("detrand: WeightedIndex with non-positive total weight")
	}
	x := s.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	panic("unreachable")
}

// Poisson returns a Poisson-distributed count with mean lambda, using
// Knuth's method (adequate for the small lambdas used in the simulation).
func (s *Source) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// NormInt returns a roughly normal integer centered on mean with the given
// spread, clamped to [min, max]. Used for human-scale quantities (domains
// contacted, connections opened).
func (s *Source) NormInt(mean, spread float64, min, max int) int {
	// Sum of three uniforms approximates a normal well enough here.
	u := s.Float64() + s.Float64() + s.Float64() // mean 1.5, var 0.25
	v := mean + (u-1.5)*2*spread
	n := int(math.Round(v))
	if n < min {
		n = min
	}
	if n > max {
		n = max
	}
	return n
}
