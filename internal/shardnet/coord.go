package shardnet

// coord.go is the transported lease coordinator. Unlike shardcoord — in
// which workers are goroutines sharing the lease table under a mutex —
// here the coordinator is a single event loop owning all lease and WAL
// state, fed by per-connection receive pumps, an accept loop, and an
// alarm goroutine that turns lease deadlines into tick events. Workers
// are on the far side of a Conn and only ever speak frames.
//
// The division of labor keeps the merge unchanged: the coordinator owns
// every slice WAL and appends only fence-admitted, in-order frames to
// it, so the journals a transported run leaves behind are exactly the
// journals an in-process run leaves behind. Everything hostile the
// network does is absorbed before the WAL's front door:
//
//   - zombie epochs: every Result/Heartbeat carries its lease epoch; a
//     frame from a superseded epoch is counted, fenced, and answered
//     with a Fence frame — it never touches the WAL.
//   - duplicate delivery: a result at an index below the slice cursor is
//     already durable and is discarded (idempotence).
//   - reordering: a result ahead of the cursor waits in a bounded
//     buffer until the gap fills; appends stay sequential.
//   - heartbeat silence (death or partition): the lease deadline
//     expires, the lease is released and re-granted at the journal
//     cursor — takeover-with-resume, no recomputation of durable work.
//   - send failures: every coordinator→worker frame is retried under
//     deterministically jittered exponential backoff; exhausting the
//     retries declares the connection dead.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"pinscope/internal/journal"
)

// Slice is one contiguous partition of the universe, same contract as
// shardcoord.Slice: the WAL at Path must carry exactly Meta and Items
// result frames when the run completes.
type Slice struct {
	Path  string
	Meta  []byte
	Items int
}

// Stats summarizes a transported run. Like shardcoord.Stats, the
// scheduling-dependent counters vary run to run and are asserted as
// inequalities; byte exactness lives in the journals.
type Stats struct {
	Workers       int // connections welcomed (reconnects count again)
	Slices        int
	Granted       int // leases granted
	Expired       int // leases released for heartbeat silence
	Reassigned    int // grants for a slice with a prior holder
	ResumedFrames int // frames found durable at first grant (prior run or takeover)
	Fenced        int // zombie-epoch frames refused by the fence
	Duplicates    int // duplicate-delivery results discarded as already journaled
	Reordered     int // results buffered ahead of the slice cursor
	Heartbeats    int // heartbeat frames admitted
	ConnDrops     int // connections that died or were declared dead
	SendRetries   int // coordinator send attempts beyond the first
}

// Config parameterizes a coordinator.
type Config struct {
	Listener Listener
	Clock    Clock
	Slices   []Slice
	// RunConfig is the Welcome payload: the run's identity (seed and
	// parameters, never data) from which a worker rebuilds its bench.
	RunConfig []byte
	// LeaseTTL is the lease duration in clock units (0 = DefaultSimTTL,
	// sized for the simulated network; TCP callers pass wall-clock
	// nanoseconds).
	LeaseTTL int64
	// SendRetries is how many times a coordinator→worker send is retried
	// before the connection is declared dead (0 = default 3).
	SendRetries int
	// BackoffSeed/BackoffBase parameterize the jittered send backoff;
	// BackoffBase is in clock units (0 = LeaseTTL/8).
	BackoffSeed int64
	BackoffBase int64
	// FailWhenDrained makes the coordinator fail — instead of waiting for
	// new connections — when every worker is gone with work remaining.
	// In-process runs with a fixed worker fleet set it; a cross-machine
	// coordinator leaves it off so the operator can start more workers.
	FailWhenDrained bool
}

// DefaultSimTTL is the default lease TTL in simulated-network ticks,
// equal to faultinject.NetTTL so derived delay and partition windows
// straddle lease deadlines by construction.
const DefaultSimTTL = 64

// pendingCap bounds the per-slice reorder buffer. A frame past the cap
// is dropped; the sender's lease eventually expires and the takeover
// resumes at the cursor, so the bound costs work, never correctness.
const pendingCap = 1024

type coordSlice struct {
	idx  int
	conf Slice

	opened  bool
	w       *journal.Writer
	next    int
	done    bool
	pending map[int][]byte

	leased     bool
	epoch      int64
	holder     *coordConn
	deadline   int64
	everLeased bool
}

type coordConn struct {
	id      int
	conn    Conn
	outbox  chan outFrame
	dead    chan struct{}
	ready   bool
	welcome bool
	holding int // slice index, -1 when idle
}

// outFrame is one queued coordinator→worker frame plus the clock hold
// that keeps simulated time pinned until the frame reaches the wire.
type outFrame struct {
	f       Frame
	release func()
}

type coordEvent struct {
	newConn *coordConn
	conn    *coordConn
	frame   *Frame
	err     error
	tick    bool
	abort   error
	// release drops the clock hold taken when the event entered the
	// inbox; the event loop calls it once the reaction (including any
	// outbox enqueues, which take their own holds) is complete.
	release func()
}

// Coordinator runs one transported sharded run to completion.
type Coordinator struct {
	cfg     Config
	ttl     int64
	retries int
	backoff *Backoff

	inbox      chan coordEvent
	quit       chan struct{}
	quitOnce   sync.Once
	acceptDone chan struct{}
	alarmCh    chan int64

	slices    []*coordSlice
	conns     map[*coordConn]bool
	nextConn  int
	everConn  bool
	doneCount int
	armed     bool
	stats     Stats
	fatal     []error
	pumps     sync.WaitGroup

	statsMu sync.Mutex // guards stats.SendRetries (bumped from outbox goroutines)
}

// NewCoordinator validates cfg and builds a coordinator. Run executes it.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Listener == nil || cfg.Clock == nil {
		return nil, errors.New("shardnet: coordinator needs a listener and a clock")
	}
	if len(cfg.Slices) == 0 {
		return nil, errors.New("shardnet: no slices")
	}
	seen := map[string]bool{}
	for _, s := range cfg.Slices {
		if s.Path == "" || seen[s.Path] {
			return nil, fmt.Errorf("shardnet: missing or duplicate slice path %q", s.Path)
		}
		seen[s.Path] = true
	}
	ttl := cfg.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultSimTTL
	}
	retries := cfg.SendRetries
	if retries <= 0 {
		retries = 3
	}
	base := cfg.BackoffBase
	if base <= 0 {
		base = ttl / 8
	}
	c := &Coordinator{
		cfg:        cfg,
		ttl:        ttl,
		retries:    retries,
		backoff:    NewBackoff(cfg.BackoffSeed, "coord-send", base, 4*ttl),
		inbox:      make(chan coordEvent, 64),
		quit:       make(chan struct{}),
		acceptDone: make(chan struct{}),
		alarmCh:    make(chan int64, 1),
		conns:      map[*coordConn]bool{},
	}
	for i, s := range cfg.Slices {
		c.slices = append(c.slices, &coordSlice{idx: i, conf: s, pending: map[int][]byte{}})
	}
	c.stats.Slices = len(cfg.Slices)
	return c, nil
}

// Abort asks a running coordinator to stop with err. Idempotent and safe
// after completion; the journals written so far survive, and a rerun
// resumes from them.
func (c *Coordinator) Abort(err error) {
	c.post(coordEvent{abort: err})
}

// post delivers an event unless the run is over. Reports delivery.
func (c *Coordinator) post(ev coordEvent) bool {
	select {
	case c.inbox <- ev:
		return true
	case <-c.quit:
		return false
	}
}

// Run drives the event loop to completion: every slice's journal ends
// with exactly Items verified frames, or an error explains why not. On
// failure the journals survive and a rerun resumes from them.
func (c *Coordinator) Run() (*Stats, error) {
	go c.acceptLoop()
	go c.alarmLoop()

	for c.doneCount < len(c.slices) {
		ev := <-c.inbox
		switch {
		case ev.abort != nil:
			c.fatal = append(c.fatal, ev.abort)
		case ev.newConn != nil:
			c.register(ev.newConn)
		case ev.tick:
			c.armed = false
			c.expireLeases()
		case ev.err != nil:
			c.connDead(ev.conn)
		case ev.frame != nil:
			if err := c.handleFrame(ev.conn, *ev.frame); err != nil {
				c.fatal = append(c.fatal, err)
			}
		}
		if len(c.fatal) == 0 {
			c.grantLoop()
			c.armAlarm()
		}
		if ev.release != nil {
			ev.release()
		}
		if len(c.fatal) > 0 {
			break
		}
		if c.cfg.FailWhenDrained && c.everConn && len(c.conns) == 0 && c.doneCount < len(c.slices) {
			c.fatal = append(c.fatal,
				fmt.Errorf("shardnet: %d of %d slices incomplete: all workers disconnected (rerun to resume from the journals)",
					len(c.slices)-c.doneCount, len(c.slices)))
			break
		}
	}
	return c.finish()
}

// finish tears the run down: Done to every live worker, listener closed,
// stray writers closed with errors surfaced (an unclosed WAL may have an
// undurable tail, and trusting it silently would corrupt a resume).
func (c *Coordinator) finish() (*Stats, error) {
	complete := c.doneCount == len(c.slices)
	for cc := range c.conns {
		if complete {
			c.enqueue(cc, Frame{Type: frameDone})
		}
		close(cc.outbox)
	}
	c.quitOnce.Do(func() { close(c.quit) })
	c.cfg.Listener.Close()
	<-c.acceptDone
	close(c.alarmCh)
	// Drain held events until every pump has exited, then sweep the
	// buffer: an unreleased hold would freeze the simulated clock for the
	// workers still winding down outside this coordinator.
	pumpsDone := make(chan struct{})
	go func() { c.pumps.Wait(); close(pumpsDone) }()
	for draining := true; draining; {
		select {
		case ev := <-c.inbox:
			if ev.release != nil {
				ev.release()
			}
		case <-pumpsDone:
			draining = false
		}
	}
	for swept := false; !swept; {
		select {
		case ev := <-c.inbox:
			if ev.release != nil {
				ev.release()
			}
		default:
			swept = true
		}
	}
	for _, s := range c.slices {
		if s.w != nil {
			if err := s.w.Close(); err != nil {
				c.fatal = append(c.fatal, fmt.Errorf("shardnet: slice %d journal close: %w", s.idx, err))
			}
			s.w = nil
		}
	}
	if len(c.fatal) > 0 {
		return &c.stats, errors.Join(c.fatal...)
	}
	if !complete {
		return &c.stats, fmt.Errorf("shardnet: %d of %d slices incomplete", len(c.slices)-c.doneCount, len(c.slices))
	}
	return &c.stats, nil
}

// acceptLoop turns accepted connections into newConn events. The event
// loop owns the registry; this goroutine never touches shared state.
func (c *Coordinator) acceptLoop() {
	defer close(c.acceptDone)
	for {
		conn, err := c.cfg.Listener.Accept()
		if err != nil {
			return
		}
		cc := &coordConn{
			conn:    conn,
			outbox:  make(chan outFrame, 64),
			dead:    make(chan struct{}),
			holding: -1,
		}
		if !c.post(coordEvent{newConn: cc}) {
			conn.Close()
			return
		}
	}
}

// alarmLoop turns armed deadlines into tick events.
func (c *Coordinator) alarmLoop() {
	for at := range c.alarmCh {
		c.cfg.Clock.WaitUntil(at)
		if !c.post(coordEvent{tick: true}) {
			return
		}
	}
}

// register adopts a new connection and starts its pump and outbox.
func (c *Coordinator) register(cc *coordConn) {
	cc.id = c.nextConn
	c.nextConn++
	c.conns[cc] = true
	c.everConn = true
	c.pumps.Add(1)
	go c.pumpLoop(cc)
	go c.outboxLoop(cc)
}

// hold pins a simulated clock for a frame in flight through the
// coordinator's channels; on a wall clock it is a no-op (real time is
// allowed to pass under real compute).
func (c *Coordinator) hold() func() {
	if h, ok := c.cfg.Clock.(interface{ Hold() func() }); ok {
		return h.Hold()
	}
	return func() {}
}

// pumpLoop relays one connection's frames into the event loop. Each
// relayed frame carries a clock hold so simulated time cannot warp past
// the coordinator's reaction to it.
func (c *Coordinator) pumpLoop(cc *coordConn) {
	defer c.pumps.Done()
	for {
		f, err := cc.conn.Recv(0)
		if err != nil {
			c.post(coordEvent{conn: cc, err: err})
			return
		}
		release := c.hold()
		if !c.post(coordEvent{conn: cc, frame: &f, release: release}) {
			release()
			return
		}
	}
}

// outboxLoop drains one connection's send queue, applying the retry and
// backoff policy. Exhausted retries declare the connection dead — posted
// back to the event loop like any other connection failure. Every
// dequeued frame's hold is released once its first send attempt has hit
// the wire (retries run under the waiter machinery instead).
func (c *Coordinator) outboxLoop(cc *coordConn) {
	broken := false
	for of := range cc.outbox {
		if broken {
			of.release()
			continue
		}
		select {
		case <-cc.dead:
			broken = true
			of.release()
			continue
		default:
		}
		err := cc.conn.Send(of.f)
		of.release()
		if err != nil {
			err = c.retrySend(cc, of.f)
		}
		if err != nil {
			broken = true
			cc.conn.Close()
			c.post(coordEvent{conn: cc, err: err})
		}
	}
	cc.conn.Close()
}

// retrySend spaces further attempts of a failed send under the jittered
// backoff policy. The per-attempt timeout lives in the transport (TCP
// write deadlines); this layer spaces the attempts.
func (c *Coordinator) retrySend(cc *coordConn, f Frame) error {
	var err error
	for attempt := 1; attempt <= c.retries; attempt++ {
		c.statsMu.Lock()
		c.stats.SendRetries++
		c.statsMu.Unlock()
		// Back off until the delay elapses or the conn is declared dead,
		// whichever comes first. The clock wait runs in a helper goroutine
		// so death can interrupt it: on the simulated clock a dead conn's
		// outbox may still hold frames whose holds pin the clock, and only
		// this loop can drain them — waiting here for logical time that
		// cannot pass would deadlock the warp. The orphaned waiter is
		// harmless: it wakes at its target and exits.
		waited := make(chan struct{})
		target := c.cfg.Clock.Now() + c.backoff.Delay(attempt-1)
		go func() {
			c.cfg.Clock.WaitUntil(target)
			close(waited)
		}()
		select {
		case <-cc.dead:
			return ErrClosed
		case <-waited:
		}
		if err = cc.conn.Send(f); err == nil {
			return nil
		}
	}
	return fmt.Errorf("shardnet: conn %d send failed after %d attempts: %w", cc.id, c.retries+1, err)
}

// enqueue hands a frame to the connection's outbox without ever blocking
// the event loop, holding the simulated clock until it is sent. A full
// outbox means the peer stopped draining; the frame is dropped and the
// lease protocol recovers.
func (c *Coordinator) enqueue(cc *coordConn, f Frame) {
	of := outFrame{f: f, release: c.hold()}
	select {
	case cc.outbox <- of:
	default:
		of.release()
	}
}

// connDead removes a connection and releases its lease at the journal
// cursor. No Fence is needed — the conn is gone — and the next grant of
// the slice resumes exactly at next.
func (c *Coordinator) connDead(cc *coordConn) {
	if !c.conns[cc] {
		return
	}
	delete(c.conns, cc)
	close(cc.dead)
	close(cc.outbox) // no further enqueues can reach a removed conn
	// Close the conn here, not just in outboxLoop's epilogue: with the
	// pump gone, an open unreceived end pins the simulated clock, and the
	// outbox goroutine may itself be waiting on that clock in retrySend.
	cc.conn.Close()
	c.stats.ConnDrops++
	if cc.holding >= 0 {
		s := c.slices[cc.holding]
		if s.leased && s.holder == cc {
			s.leased = false
			s.holder = nil
		}
		cc.holding = -1
	}
}

// expireLeases releases every lease whose deadline passed — heartbeat
// silence, whether from death, partition, or a stalled peer. The old
// holder (if its connection survives) is fenced best-effort; its epoch
// is already superseded by the time anyone else is granted the slice.
func (c *Coordinator) expireLeases() {
	now := c.cfg.Clock.Now()
	for _, s := range c.slices {
		if !s.leased || s.done || now < s.deadline {
			continue
		}
		s.leased = false
		c.stats.Expired++
		if s.holder != nil {
			c.enqueue(s.holder, Frame{Type: frameFence, Payload: encodeLeaseRef(leaseRef{Slice: s.idx, Epoch: s.epoch})})
			s.holder.holding = -1
			s.holder = nil
		}
	}
}

// armAlarm schedules a tick at the earliest lease deadline. One alarm in
// flight at a time; a deadline that moves earlier after arming is caught
// one tick late, which delays an expiry but never admits a stale frame.
func (c *Coordinator) armAlarm() {
	if c.armed {
		return
	}
	target := int64(-1)
	for _, s := range c.slices {
		if s.leased && !s.done && (target < 0 || s.deadline < target) {
			target = s.deadline
		}
	}
	if target < 0 {
		return
	}
	c.armed = true
	c.alarmCh <- target
}

// handleFrame dispatches one worker frame.
func (c *Coordinator) handleFrame(cc *coordConn, f Frame) error {
	if !c.conns[cc] {
		return nil // frame raced the connection's death
	}
	switch f.Type {
	case frameHello:
		if !cc.welcome {
			cc.welcome = true
			c.stats.Workers++
			c.enqueue(cc, Frame{Type: frameWelcome, Payload: c.cfg.RunConfig})
		}
	case frameReady:
		cc.ready = true
	case frameHeartbeat:
		ref, err := decodeLeaseRef(f.Payload)
		if err != nil || ref.Slice < 0 || ref.Slice >= len(c.slices) {
			return nil // malformed: ignore, the lease protocol recovers
		}
		s := c.slices[ref.Slice]
		if s.leased && !s.done && s.holder == cc && s.epoch == ref.Epoch {
			s.deadline = c.cfg.Clock.Now() + c.ttl
			c.stats.Heartbeats++
		} else {
			c.stats.Fenced++
			c.enqueue(cc, Frame{Type: frameFence, Payload: encodeLeaseRef(ref)})
		}
	case frameResult:
		r, err := decodeResult(f.Payload)
		if err != nil || r.Slice < 0 || r.Slice >= len(c.slices) {
			return nil
		}
		return c.handleResult(cc, r)
	}
	return nil
}

// handleResult admits one result frame through the fence, the duplicate
// filter and the reorder buffer, then appends in order.
func (c *Coordinator) handleResult(cc *coordConn, r result) error {
	s := c.slices[r.Slice]
	if s.done || !s.leased || s.holder != cc || s.epoch != r.Epoch {
		// Zombie epoch (or a slice this conn never held): the frame's
		// bytes are pure, but admitting it would bypass the lease
		// protocol — fence it and tell the sender.
		c.stats.Fenced++
		c.enqueue(cc, Frame{Type: frameFence, Payload: encodeLeaseRef(leaseRef{Slice: r.Slice, Epoch: r.Epoch})})
		return nil
	}
	s.deadline = c.cfg.Clock.Now() + c.ttl // live current-epoch traffic is a heartbeat
	switch {
	case r.Item < s.next:
		// Duplicate delivery of an already-durable frame: idempotent.
		c.stats.Duplicates++
		return nil
	case r.Item > s.next:
		if len(s.pending) < pendingCap {
			if _, have := s.pending[r.Item]; !have {
				s.pending[r.Item] = r.Payload
				c.stats.Reordered++
			}
		}
		return nil
	}
	if err := c.appendRun(s, r.Payload); err != nil {
		return err
	}
	return c.maybeComplete(s)
}

// appendRun appends the in-order frame plus everything it unblocks in
// the reorder buffer.
func (c *Coordinator) appendRun(s *coordSlice, payload []byte) error {
	for {
		if err := s.w.Append(payload); err != nil {
			return fmt.Errorf("shardnet: slice %d append: %w", s.idx, err)
		}
		s.next++
		next, ok := s.pending[s.next]
		if !ok {
			return nil
		}
		delete(s.pending, s.next)
		payload = next
	}
}

// maybeComplete closes out a slice whose journal is full. The close
// error is surfaced — a journal that failed to close may have an
// undurable tail, and the merge must not trust it silently.
func (c *Coordinator) maybeComplete(s *coordSlice) error {
	if s.done || s.next < s.conf.Items {
		return nil
	}
	s.done = true
	s.leased = false
	s.pending = map[int][]byte{}
	if s.holder != nil {
		s.holder.holding = -1
		s.holder = nil
	}
	c.doneCount++
	w := s.w
	s.w = nil
	if w != nil {
		if err := w.Close(); err != nil {
			return fmt.Errorf("shardnet: slice %d journal close: %w", s.idx, err)
		}
	}
	return nil
}

// grantLoop hands free slices to ready idle connections, opening (or
// resuming) each slice's journal at first grant. A slice found already
// complete on disk — a prior run's journal — completes without a grant.
func (c *Coordinator) grantLoop() {
	// Iterate connections in arrival order, not map order: which worker
	// is offered which slice must not depend on map iteration, or two
	// runs of the same seed would schedule (and error) differently.
	conns := make([]*coordConn, 0, len(c.conns))
	for cc := range c.conns {
		conns = append(conns, cc)
	}
	sort.Slice(conns, func(i, j int) bool { return conns[i].id < conns[j].id })
	for _, cc := range conns {
		if !cc.ready || !cc.welcome || cc.holding >= 0 {
			continue
		}
		for _, s := range c.slices {
			if s.done || s.leased {
				continue
			}
			if !s.opened {
				if err := c.openJournal(s); err != nil {
					c.fatal = append(c.fatal, err)
					return
				}
				if err := c.maybeComplete(s); err != nil {
					c.fatal = append(c.fatal, err)
					return
				}
				if s.done {
					continue
				}
			}
			s.leased = true
			s.epoch++
			s.holder = cc
			s.deadline = c.cfg.Clock.Now() + c.ttl
			s.pending = map[int][]byte{}
			if s.everLeased {
				c.stats.Reassigned++
			}
			s.everLeased = true
			c.stats.Granted++
			cc.holding = s.idx
			cc.ready = false
			c.enqueue(cc, Frame{Type: frameGrant, Payload: encodeGrant(grant{
				Slice: s.idx, Epoch: s.epoch, Start: s.next, Items: s.conf.Items,
			})})
			break
		}
	}
}

// openJournal creates or resumes the slice's WAL, exactly like a
// shardcoord takeover: stream the verified frames (Reader, never a
// whole-WAL slurp), hold the on-disk meta against the slice's, and
// continue after the durable prefix.
func (c *Coordinator) openJournal(s *coordSlice) error {
	s.opened = true
	if _, err := os.Stat(s.conf.Path); err == nil {
		r, err := journal.OpenReader(s.conf.Path)
		if err != nil {
			return fmt.Errorf("shardnet: resume slice %d: %w", s.idx, err)
		}
		if string(r.Meta()) != string(s.conf.Meta) {
			r.Close()
			return fmt.Errorf("shardnet: slice %d journal %s belongs to a different run (meta mismatch)",
				s.idx, s.conf.Path)
		}
		for {
			if _, err := r.Next(); errors.Is(err, io.EOF) {
				break
			} else if err != nil {
				r.Close()
				return fmt.Errorf("shardnet: resume slice %d: %w", s.idx, err)
			}
		}
		frames := r.Frames()
		size := r.ValidSize()
		r.Close()
		if frames > s.conf.Items {
			return fmt.Errorf("shardnet: slice %d journal has %d frames for %d items",
				s.idx, frames, s.conf.Items)
		}
		w, err := journal.ResumeWriter(s.conf.Path, frames, size)
		if err != nil {
			return fmt.Errorf("shardnet: resume slice %d: %w", s.idx, err)
		}
		s.w = w
		s.next = frames
		c.stats.ResumedFrames += frames
		return nil
	}
	w, err := journal.Create(s.conf.Path, s.conf.Meta)
	if err != nil {
		return fmt.Errorf("shardnet: slice %d: %w", s.idx, err)
	}
	s.w = w
	s.next = 0
	return nil
}
