package shardnet

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pinscope/internal/faultinject"
	"pinscope/internal/journal"
)

// waitOn passes simulated time from a goroutine that holds an open
// connection: it drains (and discards) frames until the target tick,
// using Recv deadlines so the blocked end keeps participating in the
// clock warp. Returns any non-timeout connection error.
func waitOn(conn Conn, clock Clock, target int64) error {
	for {
		wait := target - clock.Now()
		if wait <= 0 {
			return nil
		}
		if _, err := conn.Recv(wait); err != nil {
			if errors.Is(err, ErrRecvTimeout) {
				return nil
			}
			return err
		}
	}
}

// fakeBench is a pure bench: the payload for (slice, item) is a fixed
// function of its coordinates, so byte-exactness of the journals is easy
// to assert and any duplicate, replay or recompute produces identical
// bytes — the same property the real study bench guarantees.
type fakeBench struct{}

func (fakeBench) RunItem(slice, item int) ([]byte, error) {
	return itemPayload(slice, item), nil
}

func itemPayload(slice, item int) []byte {
	return []byte(fmt.Sprintf("result slice=%d item=%d payload-padding", slice, item))
}

func newFakeBench(runConfig []byte) (Bench, error) {
	if string(runConfig) != "fake-run-config" {
		return nil, fmt.Errorf("bench got wrong run config %q", runConfig)
	}
	return fakeBench{}, nil
}

func readFileBytes(path string) ([]byte, error) { return os.ReadFile(path) }

// testSlices builds n slices of the given item counts under dir.
func testSlices(dir string, items ...int) []Slice {
	out := make([]Slice, 0, len(items))
	for i, n := range items {
		out = append(out, Slice{
			Path:  filepath.Join(dir, fmt.Sprintf("slice-%02d.wal", i)),
			Meta:  []byte(fmt.Sprintf("slice %d meta", i)),
			Items: n,
		})
	}
	return out
}

// verifyJournals opens every slice WAL and holds it to exactly its item
// count of frames with the exact expected payloads — the byte-level
// ground truth every chaos scenario must land on.
func verifyJournals(t *testing.T, slices []Slice) {
	t.Helper()
	for i, s := range slices {
		r, err := journal.OpenReader(s.Path)
		if err != nil {
			t.Fatalf("slice %d: %v", i, err)
		}
		if string(r.Meta()) != string(s.Meta) {
			t.Fatalf("slice %d: meta %q, want %q", i, r.Meta(), s.Meta)
		}
		for item := 0; ; item++ {
			data, err := r.Next()
			if errors.Is(err, io.EOF) {
				if item != s.Items {
					t.Fatalf("slice %d: %d frames, want %d", i, item, s.Items)
				}
				break
			}
			if err != nil {
				t.Fatalf("slice %d item %d: %v", i, item, err)
			}
			if !bytes.Equal(data, itemPayload(i, item)) {
				t.Fatalf("slice %d item %d: payload %q, want %q", i, item, data, itemPayload(i, item))
			}
		}
		r.Close()
	}
}

// runSim drives one simulated-network run: a coordinator plus workers
// in-process workers over a SimNet injecting chaos.
func runSim(t *testing.T, slices []Slice, workers int, chaos *faultinject.NetChaos,
	killTap func(slice, item int) (int, bool)) (*Stats, []error) {
	t.Helper()
	simnet := NewSimNet(chaos)
	coord, err := NewCoordinator(Config{
		Listener:        simnet.Listener(),
		Clock:           simnet,
		Slices:          slices,
		RunConfig:       []byte("fake-run-config"),
		BackoffSeed:     7,
		FailWhenDrained: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	workerErrs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerErrs[i] = RunWorker(simnet.Dialer(), WorkerOptions{
				Clock:       simnet,
				NewBench:    newFakeBench,
				BackoffSeed: 7,
				Scope:       fmt.Sprintf("w%d", i),
				KillTap:     killTap,
			})
		}(i)
	}
	stats, err := coord.Run()
	wg.Wait()
	if err != nil {
		t.Fatalf("coordinator: %v (stats %+v, worker errs %v)", err, stats, workerErrs)
	}
	return stats, workerErrs
}

func TestSimRunCompletesAndJournals(t *testing.T) {
	slices := testSlices(t.TempDir(), 5, 3, 4)
	stats, workerErrs := runSim(t, slices, 2, nil, nil)
	for i, e := range workerErrs {
		if e != nil {
			t.Fatalf("worker %d: %v", i, e)
		}
	}
	if stats.Granted < 3 || stats.Workers < 2 || stats.Heartbeats == 0 {
		t.Fatalf("stats = %+v, want >=3 grants, >=2 workers, heartbeats", stats)
	}
	verifyJournals(t, slices)
}

func TestSimEmptySliceCompletesWithoutGrant(t *testing.T) {
	slices := testSlices(t.TempDir(), 0, 2)
	stats, _ := runSim(t, slices, 1, nil, nil)
	verifyJournals(t, slices)
	if stats.Granted != 1 {
		t.Fatalf("Granted = %d, want 1 (the empty slice completes at open)", stats.Granted)
	}
}

func TestSimDuplicateDeliveryIsIdempotent(t *testing.T) {
	slices := testSlices(t.TempDir(), 4, 4)
	chaos := &faultinject.NetChaos{Dups: []faultinject.NetDup{{Slice: 1, Item: 2}}}
	stats, _ := runSim(t, slices, 2, chaos, nil)
	if stats.Duplicates < 1 {
		t.Fatalf("Duplicates = %d, want >= 1 (the dup fault must actually fire)", stats.Duplicates)
	}
	verifyJournals(t, slices)
}

func TestSimDropSeversConnAndRunResumes(t *testing.T) {
	slices := testSlices(t.TempDir(), 5, 5)
	chaos := &faultinject.NetChaos{Drops: []faultinject.NetDrop{{Slice: 0, Item: 2}}}
	stats, _ := runSim(t, slices, 2, chaos, nil)
	if stats.ConnDrops < 1 {
		t.Fatalf("ConnDrops = %d, want >= 1 (the drop severs the stream)", stats.ConnDrops)
	}
	if stats.Granted <= len(slices) {
		t.Fatalf("Granted = %d, want > %d (the severed slice needs a second grant)", stats.Granted, len(slices))
	}
	verifyJournals(t, slices)
}

func TestSimPartitionExpiresLeaseAndRecovers(t *testing.T) {
	slices := testSlices(t.TempDir(), 6, 6)
	chaos := &faultinject.NetChaos{Partitions: []faultinject.NetPartition{
		{Slice: 0, AfterItem: 2, Ticks: 2 * DefaultSimTTL},
	}}
	stats, _ := runSim(t, slices, 2, chaos, nil)
	if stats.Expired < 1 {
		t.Fatalf("Expired = %d, want >= 1 (heartbeat silence must expire the lease)", stats.Expired)
	}
	if stats.Reassigned < 1 {
		t.Fatalf("Reassigned = %d, want >= 1", stats.Reassigned)
	}
	verifyJournals(t, slices)
}

func TestSimDelayedFrameNeverLandsOutOfOrder(t *testing.T) {
	slices := testSlices(t.TempDir(), 6, 6)
	chaos := &faultinject.NetChaos{Delays: []faultinject.NetDelay{
		{Slice: 0, Item: 1, Ticks: 3 * DefaultSimTTL / 2},
	}}
	stats, _ := runSim(t, slices, 2, chaos, nil)
	// The late frame either reorders behind its successors (buffered) or
	// arrives after its epoch died (fenced / duplicate); whichever way the
	// race lands, the journal bytes must be exact.
	if stats.Reordered+stats.Fenced+stats.Duplicates+stats.Expired == 0 {
		t.Fatalf("stats = %+v: the delay fault left no trace", stats)
	}
	verifyJournals(t, slices)
}

func TestSimWorkerKillMidStreamResumes(t *testing.T) {
	slices := testSlices(t.TempDir(), 6, 4)
	var mu sync.Mutex
	fired := false
	kill := func(slice, item int) (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if slice == 0 && item == 3 && !fired {
			fired = true
			return 5, true
		}
		return 0, false
	}
	stats, workerErrs := runSim(t, slices, 2, nil, kill)
	killed := 0
	for _, e := range workerErrs {
		if errors.Is(e, ErrWorkerKilled) {
			killed++
		}
	}
	if killed != 1 {
		t.Fatalf("killed workers = %d, want 1 (errs %v)", killed, workerErrs)
	}
	if stats.ConnDrops < 1 || stats.Reassigned < 1 {
		t.Fatalf("stats = %+v, want a conn drop and a reassignment", stats)
	}
	verifyJournals(t, slices)
}

// TestZombieEpochFrameIsFencedAndWALStaysIntact scripts the takeover race
// by hand: worker A holds epoch 1 of slice 0, appends one frame, then goes
// silent past the lease TTL; worker B takes over under epoch 2 and
// completes the slice; only then does A's delayed epoch-1 frame for item 1
// arrive. The coordinator must discard it through the fence — the WAL ends
// with exactly Items verified frames — and byte-identity on a resume of
// the finished journal proves no corruption slipped in.
func TestZombieEpochFrameIsFencedAndWALStaysIntact(t *testing.T) {
	slices := testSlices(t.TempDir(), 3, 1)
	simnet := NewSimNet(nil)
	coord, err := NewCoordinator(Config{
		Listener:        simnet.Listener(),
		Clock:           simnet,
		Slices:          slices,
		RunConfig:       []byte("fake-run-config"),
		FailWhenDrained: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	scriptErr := make([]error, 2)
	aGranted := make(chan struct{})   // A holds slice 0 epoch 1
	zombieSent := make(chan struct{}) // A's stale frame is on the wire

	// Worker A: grabs the first grant (slice 0, epoch 1), sends item 0,
	// stalls past the TTL, then replays a stale epoch-1 frame for item 1.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(zombieSent)
		scriptErr[0] = func() error {
			conn, err := simnet.Dialer().Dial()
			if err != nil {
				return err
			}
			defer conn.Close()
			if err := conn.Send(Frame{Type: frameHello}); err != nil {
				return err
			}
			if f, err := conn.Recv(8 * DefaultSimTTL); err != nil || f.Type != frameWelcome {
				return fmt.Errorf("welcome: %v (type %#x)", err, f.Type)
			}
			if err := conn.Send(Frame{Type: frameReady}); err != nil {
				return err
			}
			f, err := conn.Recv(8 * DefaultSimTTL)
			if err != nil || f.Type != frameGrant {
				return fmt.Errorf("grant: %v (type %#x)", err, f.Type)
			}
			g, err := decodeGrant(f.Payload)
			if err != nil {
				return err
			}
			if g.Slice != 0 || g.Epoch != 1 || g.Start != 0 {
				return fmt.Errorf("unexpected grant %+v", g)
			}
			close(aGranted)
			if err := conn.Send(Frame{Type: frameResult, Payload: encodeResult(result{
				Slice: 0, Epoch: g.Epoch, Item: 0, Payload: itemPayload(0, 0),
			})}); err != nil {
				return err
			}
			// Silence: no heartbeats until well past the lease deadline
			// (the Fence the expiry sends is drained and ignored).
			if err := waitOn(conn, simnet, simnet.Now()+3*DefaultSimTTL); err != nil {
				return err
			}
			// The zombie wakes and replays item 1 under its dead epoch.
			return conn.Send(Frame{Type: frameResult, Payload: encodeResult(result{
				Slice: 0, Epoch: g.Epoch, Item: 1, Payload: itemPayload(0, 1),
			})})
		}()
	}()

	// Worker B: dials once A holds slice 0, works every grant it gets —
	// including the slice-0 takeover — and keeps the takeover lease alive
	// on heartbeats until A's zombie frame is on the wire, so the fence
	// (not a shutdown) is what rejects it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		scriptErr[1] = func() error {
			<-aGranted
			conn, err := simnet.Dialer().Dial()
			if err != nil {
				return err
			}
			defer conn.Close()
			if err := conn.Send(Frame{Type: frameHello}); err != nil {
				return err
			}
			if f, err := conn.Recv(8 * DefaultSimTTL); err != nil || f.Type != frameWelcome {
				return fmt.Errorf("welcome: %v (type %#x)", err, f.Type)
			}
			sawSliceZeroTakeover := false
			for {
				if err := conn.Send(Frame{Type: frameReady}); err != nil {
					return err
				}
				f, err := conn.Recv(DefaultSimTTL)
				if errors.Is(err, ErrRecvTimeout) {
					continue
				}
				if err != nil {
					return err
				}
				switch f.Type {
				case frameGrant:
					g, err := decodeGrant(f.Payload)
					if err != nil {
						return err
					}
					if g.Slice == 0 {
						if g.Epoch < 2 || g.Start != 1 {
							return fmt.Errorf("takeover grant %+v, want epoch >= 2 resuming at 1", g)
						}
						sawSliceZeroTakeover = true
						// Heartbeat-hold until the zombie frame exists, then
						// one more beat so the warp delivers it to the fence.
						held := false
						for !held {
							select {
							case <-zombieSent:
								held = true
							default:
							}
							if err := conn.Send(Frame{Type: frameHeartbeat,
								Payload: encodeLeaseRef(leaseRef{Slice: g.Slice, Epoch: g.Epoch})}); err != nil {
								return err
							}
							if err := waitOn(conn, simnet, simnet.Now()+DefaultSimTTL/8); err != nil {
								return err
							}
							if simnet.Now() > 100*DefaultSimTTL {
								return errors.New("zombie frame never showed up")
							}
						}
					}
					for item := g.Start; item < g.Items; item++ {
						if err := conn.Send(Frame{Type: frameResult, Payload: encodeResult(result{
							Slice: g.Slice, Epoch: g.Epoch, Item: item, Payload: itemPayload(g.Slice, item),
						})}); err != nil {
							return err
						}
					}
				case frameDone:
					if !sawSliceZeroTakeover {
						return errors.New("run finished without a slice-0 takeover")
					}
					return nil
				}
			}
		}()
	}()

	stats, err := coord.Run()
	wg.Wait()
	if err != nil {
		t.Fatalf("coordinator: %v (stats %+v)", err, stats)
	}
	for i, e := range scriptErr {
		if e != nil {
			t.Fatalf("scripted worker %d: %v", i, e)
		}
	}
	if stats.Expired < 1 {
		t.Fatalf("Expired = %d, want >= 1 (A's silence must expire the lease)", stats.Expired)
	}
	if stats.Fenced < 1 {
		t.Fatalf("Fenced = %d, want >= 1 (the zombie epoch-1 frame must be refused)", stats.Fenced)
	}
	if stats.Reassigned < 1 {
		t.Fatalf("Reassigned = %d, want >= 1 (slice 0 must be re-granted after A's silence)", stats.Reassigned)
	}
	verifyJournals(t, slices)

	// Byte-identity on resume: a fresh coordinator over the same journals
	// finds every slice complete and rewrites nothing.
	before := make([][]byte, len(slices))
	for i, s := range slices {
		b, err := readFileBytes(s.Path)
		if err != nil {
			t.Fatal(err)
		}
		before[i] = b
	}
	net2 := NewSimNet(nil)
	coord2, err := NewCoordinator(Config{
		Listener:        net2.Listener(),
		Clock:           net2,
		Slices:          slices,
		RunConfig:       []byte("fake-run-config"),
		FailWhenDrained: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg2 sync.WaitGroup
	wg2.Add(1)
	var werr error
	go func() {
		defer wg2.Done()
		werr = RunWorker(net2.Dialer(), WorkerOptions{Clock: net2, NewBench: newFakeBench})
	}()
	stats2, err := coord2.Run()
	wg2.Wait()
	if err != nil || werr != nil {
		t.Fatalf("resume run: coord %v, worker %v", err, werr)
	}
	if stats2.Granted != 0 {
		t.Fatalf("resume Granted = %d, want 0 (every slice already complete)", stats2.Granted)
	}
	for i, s := range slices {
		after, err := readFileBytes(s.Path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(before[i], after) {
			t.Fatalf("slice %d journal changed across a no-op resume", i)
		}
	}
}

func TestBackoffJitterIsDeterministicAndBounded(t *testing.T) {
	b := NewBackoff(11, "worker/3", 4, 64)
	var prev int64 = -1
	for attempt := 0; attempt < 10; attempt++ {
		d := b.Delay(attempt)
		if d != NewBackoff(11, "worker/3", 4, 64).Delay(attempt) {
			t.Fatalf("attempt %d: delay not a pure function of (seed, scope, attempt)", attempt)
		}
		if d < 1 || d > 96 { // max 64, jitter in [0.5, 1.5)
			t.Fatalf("attempt %d: delay %d out of [1, 96]", attempt, d)
		}
		if attempt >= 6 && prev >= 0 && d > 96 {
			t.Fatalf("attempt %d: delay %d escaped the cap", attempt, d)
		}
		prev = d
	}
	if NewBackoff(11, "worker/3", 4, 64).Delay(3) == NewBackoff(11, "worker/4", 4, 64).Delay(3) &&
		NewBackoff(11, "worker/3", 4, 64).Delay(4) == NewBackoff(11, "worker/4", 4, 64).Delay(4) {
		t.Fatal("distinct scopes produced identical jitter streams")
	}
}

func TestTCPLoopbackRunWithMidStreamKill(t *testing.T) {
	slices := testSlices(t.TempDir(), 5, 4)
	ln, err := ListenTCP("127.0.0.1:0", TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(Config{
		Listener:        ln,
		Clock:           WallClock(),
		Slices:          slices,
		RunConfig:       []byte("fake-run-config"),
		LeaseTTL:        int64(2_000_000_000), // 2s in wall nanoseconds
		FailWhenDrained: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	fired := false
	kill := func(slice, item int) (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if slice == 0 && item == 2 && !fired {
			fired = true
			return 7, true // torn wire prefix: the framing must reject it
		}
		return 0, false
	}
	workerErrs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerErrs[i] = RunWorker(TCPDialer{Addr: ln.Addr()}, WorkerOptions{
				Clock:       WallClock(),
				NewBench:    newFakeBench,
				IdleTimeout: int64(250_000_000), // 250ms
				BackoffBase: int64(20_000_000),  // 20ms
				Scope:       fmt.Sprintf("tcp%d", i),
				KillTap:     kill,
			})
		}(i)
	}
	stats, err := coord.Run()
	wg.Wait()
	if err != nil {
		t.Fatalf("coordinator: %v (stats %+v, worker errs %v)", err, stats, workerErrs)
	}
	killed := 0
	for _, e := range workerErrs {
		if errors.Is(e, ErrWorkerKilled) {
			killed++
		}
	}
	if killed != 1 {
		t.Fatalf("killed workers = %d, want 1 (errs %v)", killed, workerErrs)
	}
	if stats.ConnDrops < 1 || stats.Reassigned < 1 {
		t.Fatalf("stats = %+v, want the killed conn dropped and slice 0 reassigned", stats)
	}
	verifyJournals(t, slices)
}

func TestTCPRejectsWrongMagic(t *testing.T) {
	opt := TCPOptions{HandshakeTimeout: 500 * time.Millisecond}
	ln, err := ListenTCP("127.0.0.1:0", opt)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		accepted <- err
	}()

	// A peer speaking the journal magic — the closest plausible confusion —
	// must be refused by the wire magic, and must not kill the listener.
	bad, err := net.Dial("tcp", ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	if _, err := bad.Write([]byte("PINWAL1\n")); err != nil {
		t.Fatal(err)
	}
	// The listener sends its own magic, sees ours mismatch, and hangs up:
	// past its 8-byte magic the bad peer reads only EOF, never a frame.
	bad.SetReadDeadline(time.Now().Add(5 * time.Second))
	got := make([]byte, len(wireMagic))
	if _, err := io.ReadFull(bad, got); err != nil {
		t.Fatalf("reading listener magic: %v", err)
	}
	if string(got) != wireMagic {
		t.Fatalf("listener magic = %q, want %q", got, wireMagic)
	}
	if n, err := bad.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("after bad magic: read %d bytes, err %v, want EOF", n, err)
	}

	// The accept loop survived: a well-behaved dial still lands.
	if _, err := (TCPDialer{Addr: ln.Addr(), Opt: opt}).Dial(); err != nil {
		t.Fatalf("good dial after bad peer should succeed: %v", err)
	}
	if err := <-accepted; err != nil {
		t.Fatalf("accept: %v", err)
	}
}
