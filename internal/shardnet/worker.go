package shardnet

// worker.go is the far side of the transport: a worker dials the
// coordinator (with jittered backoff across reconnects), rebuilds its
// bench from the Welcome payload — the run's identity, never its data —
// and then alternates between announcing Ready and working granted
// leases. While working a lease it interleaves heartbeat frames with
// result frames, which is what keeps the lease alive when the result
// stream itself is slow: liveness and progress travel separately.
//
// The worker is deliberately stateless across connections: everything it
// knows (the bench) is rebuilt from the run config, and everything it
// produces is a pure function of (run config, item index). Losing a
// connection mid-slice therefore costs only the recompute; the
// coordinator's journal cursor decides where the takeover resumes.

import (
	"errors"
	"fmt"
)

// Bench computes one item's journal payload. Implementations must be
// pure: the same (slice, item) always yields the same bytes.
type Bench interface {
	RunItem(slice, item int) ([]byte, error)
}

// WorkerOptions configure RunWorker. Clock and NewBench are required.
type WorkerOptions struct {
	Clock Clock
	// NewBench builds the bench from the Welcome payload, once per
	// worker; reconnects reuse it.
	NewBench func(runConfig []byte) (Bench, error)
	// IdleTimeout bounds each idle Recv in clock units; on expiry the
	// worker re-announces Ready, which also recovers grants eaten by a
	// partition (0 = 4·DefaultSimTTL).
	IdleTimeout int64
	// Reconnects is the total dial/connection-failure budget before the
	// worker gives up (0 = 8).
	Reconnects int
	// BackoffSeed/Base/Max parameterize the reconnect backoff; Scope
	// decorrelates it across workers (defaults: base 2, max 64·base).
	BackoffSeed int64
	BackoffBase int64
	BackoffMax  int64
	Scope       string
	// KillTap, when set, is consulted before each result send; returning
	// kill = true makes the worker die mid-stream — over TCP it writes
	// torn bytes of the result frame first, the wire image of a process
	// dying mid-send. Fire-once is the caller's responsibility.
	KillTap func(slice, item int) (torn int, kill bool)
}

// tornSender is implemented by transports that can write a torn frame
// prefix before dying (the TCP conn); the simulated network just severs.
type tornSender interface {
	SendTorn(f Frame, torn int) error
}

// RunWorker dials the coordinator and works until Done. It returns nil
// when the coordinator reports the run complete, ErrWorkerKilled when an
// injected death fires, and an error when the reconnect budget or the
// bench fails.
func RunWorker(d Dialer, opt WorkerOptions) error {
	if opt.Clock == nil || opt.NewBench == nil {
		return errors.New("shardnet: worker needs a clock and a bench constructor")
	}
	if opt.IdleTimeout <= 0 {
		opt.IdleTimeout = 4 * DefaultSimTTL
	}
	reconnects := opt.Reconnects
	if reconnects <= 0 {
		reconnects = 8
	}
	base := opt.BackoffBase
	if base <= 0 {
		base = 2
	}
	backoff := NewBackoff(opt.BackoffSeed, "worker/"+opt.Scope, base, opt.BackoffMax)

	var bench Bench
	failures := 0
	for {
		conn, err := d.Dial()
		if err == nil {
			err = runSession(conn, opt, &bench)
			conn.Close()
			if err == nil {
				return nil
			}
		}
		if errors.Is(err, ErrWorkerKilled) {
			return err
		}
		if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrRecvTimeout) {
			return err // bench or protocol failure: reconnecting cannot help
		}
		failures++
		if failures > reconnects {
			return fmt.Errorf("shardnet: worker giving up after %d connection failures: %w", failures, err)
		}
		opt.Clock.WaitUntil(opt.Clock.Now() + backoff.Delay(failures-1))
	}
}

// runSession speaks one connection's lifetime: Hello/Welcome, then
// Ready/Grant cycles until Done. Connection errors bubble up for the
// reconnect loop; nil means the run is complete.
func runSession(conn Conn, opt WorkerOptions, bench *Bench) error {
	if err := conn.Send(Frame{Type: frameHello}); err != nil {
		return err
	}
	f, err := conn.Recv(opt.IdleTimeout)
	if err != nil {
		return err
	}
	if f.Type != frameWelcome {
		return fmt.Errorf("shardnet: expected Welcome, got frame type 0x%02x", f.Type)
	}
	if *bench == nil {
		b, err := opt.NewBench(f.Payload)
		if err != nil {
			return fmt.Errorf("shardnet: building bench from run config: %w", err)
		}
		*bench = b
	}
	if err := conn.Send(Frame{Type: frameReady}); err != nil {
		return err
	}
	for {
		f, err := conn.Recv(opt.IdleTimeout)
		if errors.Is(err, ErrRecvTimeout) {
			// A grant (or Done) may have been eaten by a partition; the
			// idle worker re-announces itself instead of waiting forever.
			if err := conn.Send(Frame{Type: frameReady}); err != nil {
				return err
			}
			continue
		}
		if err != nil {
			return err
		}
		switch f.Type {
		case frameGrant:
			g, err := decodeGrant(f.Payload)
			if err != nil {
				return err
			}
			if err := runGrant(conn, opt, *bench, g); err != nil {
				return err
			}
			if err := conn.Send(Frame{Type: frameReady}); err != nil {
				return err
			}
		case frameFence:
			// A lease this worker no longer holds died; nothing to drop.
		case frameDone:
			return nil
		}
	}
}

// runGrant works items [Start, Items) of the granted slice, heartbeating
// before each item so the lease outlives slow result frames. The worker
// never learns mid-grant that it was fenced — it cannot Recv while
// computing — so a fenced worker finishes as a zombie whose frames the
// coordinator refuses; purity makes that waste, never corruption.
func runGrant(conn Conn, opt WorkerOptions, bench Bench, g grant) error {
	hb := encodeLeaseRef(leaseRef{Slice: g.Slice, Epoch: g.Epoch})
	for item := g.Start; item < g.Items; item++ {
		if err := conn.Send(Frame{Type: frameHeartbeat, Payload: hb}); err != nil {
			return err
		}
		payload, err := bench.RunItem(g.Slice, item)
		if err != nil {
			return fmt.Errorf("shardnet: slice %d item %d: %w", g.Slice, item, err)
		}
		rf := Frame{Type: frameResult, Payload: encodeResult(result{
			Slice: g.Slice, Epoch: g.Epoch, Item: item, Payload: payload,
		})}
		if opt.KillTap != nil {
			if torn, kill := opt.KillTap(g.Slice, item); kill {
				if ts, ok := conn.(tornSender); ok {
					ts.SendTorn(rf, torn)
				} else {
					conn.Close()
				}
				return ErrWorkerKilled
			}
		}
		if err := conn.Send(rf); err != nil {
			return err
		}
	}
	return nil
}
