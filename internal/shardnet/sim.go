package shardnet

// sim.go is the deterministic in-process network: connections are
// in-memory frame queues under one logical clock, and every pathology —
// delay, drop, duplication, the reordering they produce, and partitions —
// is a seeded draw from the faultinject plan, applied when a frame is
// sent. There is no wall clock and no goroutine sleeps: like shardcoord,
// the network advances time by discrete-event warp — when every open
// endpoint is blocked (receiving or waiting on the clock), the clock
// jumps to the earliest pending delivery, receive deadline, or wait
// target. Tests of hostile networks therefore run in microseconds and
// replay exactly.
//
// Fault semantics, chosen to mirror a real stream transport:
//
//   - delay: one result frame stays in flight for extra ticks while
//     later frames (heartbeats included) overtake it — reordering falls
//     out of delay, it is not a separate mechanism.
//   - drop: a reliable stream is in-order-or-dead, so losing a frame
//     means the connection is severed; both ends see it die.
//   - duplicate: the frame is delivered twice, the copy slightly later.
//   - partition: every frame in both directions on the holding
//     connection is silently discarded for a window; neither side learns
//     the link is gone — only heartbeat silence (lease expiry) does.
//
// Each fault fires once, like every member of the faultinject family.

import (
	"fmt"
	"sync"

	"pinscope/internal/faultinject"
)

// SimNet is one simulated network: a logical clock, a listener, and the
// connections dialed through it. It implements Clock for both sides.
type SimNet struct {
	mu    sync.Mutex
	cond  *sync.Cond
	now   int64
	seq   uint64
	chaos *faultinject.NetChaos

	openEnds int
	holds    int
	waiters  map[*simWaiter]struct{}

	listener *SimListener

	firedDelay map[[2]int]bool
	firedDrop  map[[2]int]bool
	firedDup   map[[2]int]bool
	firedPart  map[[2]int]bool
}

type simWaiter struct{ target int64 }

// NewSimNet builds a simulated network injecting chaos (nil injects
// nothing).
func NewSimNet(chaos *faultinject.NetChaos) *SimNet {
	n := &SimNet{
		chaos:      chaos,
		waiters:    map[*simWaiter]struct{}{},
		firedDelay: map[[2]int]bool{},
		firedDrop:  map[[2]int]bool{},
		firedDup:   map[[2]int]bool{},
		firedPart:  map[[2]int]bool{},
	}
	n.cond = sync.NewCond(&n.mu)
	n.listener = &SimListener{net: n}
	return n
}

// Now returns the logical clock reading.
func (n *SimNet) Now() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.now
}

// WaitUntil blocks until the logical clock reaches at. A blocked waiter
// participates in the quiescence warp, so the wait costs no wall time
// once every other endpoint is blocked too.
func (n *SimNet) WaitUntil(at int64) int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	w := &simWaiter{target: at}
	n.waiters[w] = struct{}{}
	for n.now < at {
		if !n.quiescentLocked() || n.runnableLocked() || !n.warpLocked() {
			n.cond.Wait()
		}
	}
	delete(n.waiters, w)
	// Deregistering changes what the warp can see — a peer blocked on
	// "that waiter will act next" must re-evaluate, or its wakeup is lost.
	n.cond.Broadcast()
	return n.now
}

// Hold pins the logical clock: while any hold is outstanding the network
// is not quiescent, so the clock cannot warp. The coordinator takes a
// hold for every frame that is inside its channels — received but not yet
// reacted to, or queued but not yet sent — because work in a Go channel
// is invisible to the endpoint-blocked test, and warping over it would
// fire timeouts against a peer that has in fact already answered. The
// returned release is idempotent.
func (n *SimNet) Hold() func() {
	n.mu.Lock()
	n.holds++
	n.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			n.mu.Lock()
			n.holds--
			n.mu.Unlock()
			n.cond.Broadcast()
		})
	}
}

// Listener returns the network's single listener (the coordinator side).
func (n *SimNet) Listener() *SimListener { return n.listener }

// Dialer returns a Dialer producing worker-side connections.
func (n *SimNet) Dialer() Dialer { return simDialer{net: n} }

// quiescentLocked reports that every open endpoint is blocked in Recv —
// the only state in which advancing the clock cannot race an in-flight
// computation (a goroutine outside Recv will send or close soon, and
// logical time must not pass under it). Recomputed from the endpoint
// states so an end closed while its receiver is mid-wake never skews the
// count.
func (n *SimNet) quiescentLocked() bool {
	if n.holds > 0 {
		return false
	}
	open, blocked := 0, 0
	n.forEachEndLocked(func(e *simEnd) {
		open++
		if e.blocked {
			blocked++
		}
	})
	return blocked >= open
}

// runnableLocked reports that some blocked party is already due to wake
// at the current clock — a deliverable frame, an expired deadline, a dead
// peer, or a reached wait target — and just hasn't been scheduled yet.
// Warping (or declaring deadlock) under it would race that wake-up: the
// clock must hold still until the runnable party has made its move.
func (n *SimNet) runnableLocked() bool {
	run := false
	n.forEachEndLocked(func(e *simEnd) {
		if !e.blocked || run {
			return
		}
		if e.deliverableLocked(n.now) >= 0 ||
			(e.deadline >= 0 && n.now >= e.deadline) ||
			(e.peer().closed && len(e.queue) == 0) {
			run = true
		}
	})
	for w := range n.waiters {
		if n.now >= w.target {
			return true
		}
	}
	return run
}

// warpLocked advances the clock to the earliest pending delivery,
// receive deadline, or wait target strictly ahead of now. With nothing
// to warp to in a quiescent network, every endpoint would wait forever —
// a protocol bug, surfaced loudly instead of hanging the run.
func (n *SimNet) warpLocked() bool {
	target := int64(-1)
	consider := func(at int64) {
		if at > n.now && (target < 0 || at < target) {
			target = at
		}
	}
	n.forEachEndLocked(func(e *simEnd) {
		for _, d := range e.queue {
			consider(d.at)
		}
		if e.blocked && e.deadline >= 0 {
			consider(e.deadline)
		}
	})
	for w := range n.waiters {
		consider(w.target)
	}
	if target < 0 {
		if n.openEnds > 0 && len(n.waiters) == 0 {
			panic("shardnet: simulated network deadlock: every endpoint blocked with nothing in flight, no deadline and no timer")
		}
		return false
	}
	n.now = target
	n.cond.Broadcast()
	return true
}

func (n *SimNet) forEachEndLocked(f func(*simEnd)) {
	for _, c := range n.listener.conns {
		if !c.worker.closed {
			f(c.worker)
		}
		if !c.coord.closed {
			f(c.coord)
		}
	}
}

// simPair is one dialed connection: two ends sharing fault state.
type simPair struct {
	net       *SimNet
	worker    *simEnd
	coord     *simEnd
	partUntil int64 // both directions silently dropped while now < partUntil
}

type simDelivery struct {
	at    int64
	seq   uint64
	frame Frame
}

// simEnd is one side of a simulated connection.
type simEnd struct {
	pair     *simPair
	isWorker bool
	queue    []simDelivery
	closed   bool
	blocked  bool
	deadline int64 // receive deadline while blocked; -1 means none
}

func (e *simEnd) peer() *simEnd {
	if e.isWorker {
		return e.pair.coord
	}
	return e.pair.worker
}

// Send applies the fault plan and enqueues the frame at the peer. The
// baseline hop costs one tick, which is what lets delayed frames be
// overtaken: an undelayed later send arrives first.
func (e *simEnd) Send(f Frame) error {
	n := e.pair.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if e.closed || e.peer().closed {
		return ErrClosed
	}
	if n.now < e.pair.partUntil {
		return nil // partitioned: silently eaten, the sender learns nothing
	}
	delay := int64(0)
	dup := false
	if e.isWorker && f.Type == frameResult {
		if slice, item, ok := resultRef(f.Payload); ok {
			key := [2]int{slice, item}
			if ticks, hit := n.chaos.PartitionFor(slice, item); hit && !n.firedPart[key] {
				n.firedPart[key] = true
				e.pair.partUntil = n.now + ticks
				return nil // the triggering frame is inside the partition
			}
			if n.chaos.DropFor(slice, item) && !n.firedDrop[key] {
				n.firedDrop[key] = true
				// In-order-or-dead: a lost frame severs the stream.
				e.closed = true
				e.peer().closed = true
				n.openEnds -= 2
				n.cond.Broadcast()
				return ErrClosed
			}
			if ticks, hit := n.chaos.DelayFor(slice, item); hit && !n.firedDelay[key] {
				n.firedDelay[key] = true
				delay = ticks
			}
			if n.chaos.DupFor(slice, item) && !n.firedDup[key] {
				n.firedDup[key] = true
				dup = true
			}
		}
	}
	peer := e.peer()
	peer.enqueueLocked(n, f, n.now+1+delay)
	if dup {
		// The copy lands on the same tick but a later sequence number: a
		// distinct, strictly-later delivery that cannot be stranded past
		// the end of the run the way a further-future tick could be.
		peer.enqueueLocked(n, f, n.now+1+delay)
	}
	n.cond.Broadcast()
	return nil
}

func (e *simEnd) enqueueLocked(n *SimNet, f Frame, at int64) {
	n.seq++
	e.queue = append(e.queue, simDelivery{at: at, seq: n.seq, frame: f})
}

// Recv blocks for the next deliverable frame, participating in the warp
// while blocked. Frames sent before a peer's death are still delivered;
// only an empty queue on a dead connection reads as closed.
func (e *simEnd) Recv(wait int64) (Frame, error) {
	n := e.pair.net
	n.mu.Lock()
	defer n.mu.Unlock()
	deadline := int64(-1)
	if wait > 0 {
		deadline = n.now + wait
	}
	for {
		if i := e.deliverableLocked(n.now); i >= 0 {
			f := e.queue[i].frame
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			return f, nil
		}
		if e.closed {
			return Frame{}, ErrClosed
		}
		if e.peer().closed && len(e.queue) == 0 {
			return Frame{}, ErrClosed
		}
		if deadline >= 0 && n.now >= deadline {
			return Frame{}, ErrRecvTimeout
		}
		e.blocked = true
		e.deadline = deadline
		if !n.quiescentLocked() || n.runnableLocked() || !n.warpLocked() {
			n.cond.Wait()
		}
		e.blocked = false
		e.deadline = -1
	}
}

// deliverableLocked returns the index of the earliest (at, seq) delivery
// due by now, or -1.
func (e *simEnd) deliverableLocked(now int64) int {
	best := -1
	for i, d := range e.queue {
		if d.at > now {
			continue
		}
		if best < 0 || d.at < e.queue[best].at ||
			(d.at == e.queue[best].at && d.seq < e.queue[best].seq) {
			best = i
		}
	}
	return best
}

// Close severs this end; the peer drains its queue and then reads closed.
func (e *simEnd) Close() error {
	n := e.pair.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if !e.closed {
		e.closed = true
		n.openEnds--
		n.cond.Broadcast()
	}
	return nil
}

// SimListener hands out the coordinator end of dialed connections.
type SimListener struct {
	net     *SimNet
	pending []*simPair
	conns   []*simPair
	closed  bool
}

// Accept blocks for the next dialed connection. It does not participate
// in quiescence: an accept loop blocked here holds no endpoint, so it
// cannot block the warp.
func (l *SimListener) Accept() (Conn, error) {
	n := l.net
	n.mu.Lock()
	defer n.mu.Unlock()
	for len(l.pending) == 0 {
		if l.closed {
			return nil, ErrClosed
		}
		n.cond.Wait()
	}
	p := l.pending[0]
	l.pending = l.pending[1:]
	return p.coord, nil
}

// Close stops accepting; queued-but-unaccepted dials are refused.
func (l *SimListener) Close() error {
	n := l.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	for _, p := range l.pending {
		if !p.worker.closed {
			p.worker.closed = true
			n.openEnds--
		}
		if !p.coord.closed {
			p.coord.closed = true
			n.openEnds--
		}
	}
	l.pending = nil
	n.cond.Broadcast()
	return nil
}

type simDialer struct{ net *SimNet }

// Dial creates a connection pair and queues its coordinator end at the
// listener.
func (d simDialer) Dial() (Conn, error) {
	n := d.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.listener.closed {
		return nil, fmt.Errorf("shardnet: dial: %w", ErrClosed)
	}
	p := &simPair{net: n}
	p.worker = &simEnd{pair: p, isWorker: true, deadline: -1}
	p.coord = &simEnd{pair: p, deadline: -1}
	n.openEnds += 2
	n.listener.pending = append(n.listener.pending, p)
	n.listener.conns = append(n.listener.conns, p)
	n.cond.Broadcast()
	return p.worker, nil
}
