// Package shardnet lifts the shardcoord lease protocol over a message
// transport, so shard workers can run on separate machines: the
// coordinator owns the lease table and the slice WALs, workers receive
// the run configuration over the wire (the seed and parameters, never
// data), rebuild the world deterministically, and stream result frames
// back. Because each slice journal is written by the coordinator from
// verified frames, the existing streaming merge consumes a transported
// run's journals unchanged.
//
// Two interchangeable transports implement the same Conn/Listener
// contract: a deterministic in-process simulated network (sim.go) whose
// delay, drop, duplication, reorder and partition faults are seeded
// draws from faultinject + detrand, and a real TCP transport (tcp.go)
// whose frames reuse the journal framing discipline — length-prefixed,
// CRC32C-checksummed, versioned by a magic string.
//
// Protocol shape (full grammar in DESIGN.md §11):
//
//	worker → coordinator:  Hello, Ready, Result(slice,epoch,item,payload),
//	                       Heartbeat(slice,epoch)
//	coordinator → worker:  Welcome(run config), Grant(slice,epoch,start,items),
//	                       Fence(slice,epoch), Done
//
// Heartbeats are distinct from result frames so a lease stays alive
// while a slice journal streams back slowly; every frame that touches a
// slice carries the lease epoch, and the coordinator's fence rejects
// frames from zombie epochs before they can reach the WAL. Safety never
// depends on timing: a result frame is a pure function of (run config,
// item index), so duplicated, reordered or replayed work always carries
// the same bytes, and the journals — hence the merged export — are
// byte-identical to a single-process run under arbitrary chaos.
package shardnet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pinscope/internal/detrand"
)

// Frame types. The numbering space is disjoint from the journal's frame
// types (0x01/0x02) so a wire frame accidentally spliced into a WAL (or
// vice versa) is rejected by type, not just by checksum.
const (
	frameHello     = 0x10 // w→c: first frame after connect
	frameWelcome   = 0x11 // c→w: run config payload
	frameReady     = 0x12 // w→c: idle, wants a grant
	frameGrant     = 0x13 // c→w: lease on a slice
	frameResult    = 0x14 // w→c: one result frame for the slice WAL
	frameHeartbeat = 0x15 // w→c: lease keep-alive, no payload data
	frameFence     = 0x16 // c→w: that lease is dead, abandon it
	frameDone      = 0x17 // c→w: run complete, disconnect
)

// Frame is one protocol message. Payload layout depends on Type; the
// encode/decode helpers below are the only place the layouts live.
type Frame struct {
	Type    byte
	Payload []byte
}

// Errors shared by both transports.
var (
	// ErrClosed reports a connection that is closed or broken: the peer
	// hung up, the link was severed, or Close was called locally.
	ErrClosed = errors.New("shardnet: connection closed")
	// ErrRecvTimeout reports that Recv's wait bound expired with no frame.
	ErrRecvTimeout = errors.New("shardnet: receive timed out")
	// ErrWorkerKilled reports that the injected mid-stream shard death
	// fired: the worker process is "dead" and must not reconnect.
	ErrWorkerKilled = errors.New("shardnet: worker killed by injected shard death")
)

// Conn is one worker's connection. Send is safe for concurrent use (the
// worker's heartbeater and item loop share it); Recv is not — each side
// dedicates one goroutine to receiving.
type Conn interface {
	// Send transmits one frame, bounded by the transport's send timeout.
	Send(f Frame) error
	// Recv blocks for the next frame. wait > 0 bounds the wait in the
	// transport's clock units and expires with ErrRecvTimeout; wait <= 0
	// waits until a frame arrives or the connection dies.
	Recv(wait int64) (Frame, error)
	Close() error
}

// Listener accepts worker connections on the coordinator side.
type Listener interface {
	Accept() (Conn, error)
	Close() error
}

// Dialer opens connections to the coordinator on the worker side.
type Dialer interface {
	Dial() (Conn, error)
}

// Clock is the time source both sides schedule on: logical ticks for the
// simulated network, wall nanoseconds for TCP. WaitUntil must tolerate a
// target already in the past.
type Clock interface {
	Now() int64
	// WaitUntil blocks until the clock reaches at and returns the
	// reading. On the simulated network a blocked WaitUntil participates
	// in the discrete-event warp, so waiting costs no wall time.
	WaitUntil(at int64) int64
}

// grant is the Grant payload: a lease on items [Start, Items) of a slice.
type grant struct {
	Slice int
	Epoch int64
	Start int
	Items int
}

// leaseRef names (slice, epoch) — the Heartbeat and Fence payload.
type leaseRef struct {
	Slice int
	Epoch int64
}

// result is the decoded Result frame: a lease reference, the item index,
// and the journal-bound payload bytes.
type result struct {
	Slice   int
	Epoch   int64
	Item    int
	Payload []byte
}

func encodeGrant(g grant) []byte {
	b := make([]byte, 20)
	binary.LittleEndian.PutUint32(b[0:4], uint32(g.Slice))
	binary.LittleEndian.PutUint64(b[4:12], uint64(g.Epoch))
	binary.LittleEndian.PutUint32(b[12:16], uint32(g.Start))
	binary.LittleEndian.PutUint32(b[16:20], uint32(g.Items))
	return b
}

func decodeGrant(p []byte) (grant, error) {
	if len(p) != 20 {
		return grant{}, fmt.Errorf("shardnet: grant payload is %d bytes, want 20", len(p))
	}
	return grant{
		Slice: int(binary.LittleEndian.Uint32(p[0:4])),
		Epoch: int64(binary.LittleEndian.Uint64(p[4:12])),
		Start: int(binary.LittleEndian.Uint32(p[12:16])),
		Items: int(binary.LittleEndian.Uint32(p[16:20])),
	}, nil
}

func encodeLeaseRef(r leaseRef) []byte {
	b := make([]byte, 12)
	binary.LittleEndian.PutUint32(b[0:4], uint32(r.Slice))
	binary.LittleEndian.PutUint64(b[4:12], uint64(r.Epoch))
	return b
}

func decodeLeaseRef(p []byte) (leaseRef, error) {
	if len(p) != 12 {
		return leaseRef{}, fmt.Errorf("shardnet: lease-ref payload is %d bytes, want 12", len(p))
	}
	return leaseRef{
		Slice: int(binary.LittleEndian.Uint32(p[0:4])),
		Epoch: int64(binary.LittleEndian.Uint64(p[4:12])),
	}, nil
}

func encodeResult(r result) []byte {
	b := make([]byte, 16+len(r.Payload))
	binary.LittleEndian.PutUint32(b[0:4], uint32(r.Slice))
	binary.LittleEndian.PutUint64(b[4:12], uint64(r.Epoch))
	binary.LittleEndian.PutUint32(b[12:16], uint32(r.Item))
	copy(b[16:], r.Payload)
	return b
}

func decodeResult(p []byte) (result, error) {
	if len(p) < 16 {
		return result{}, fmt.Errorf("shardnet: result payload is %d bytes, want >= 16", len(p))
	}
	return result{
		Slice:   int(binary.LittleEndian.Uint32(p[0:4])),
		Epoch:   int64(binary.LittleEndian.Uint64(p[4:12])),
		Item:    int(binary.LittleEndian.Uint32(p[12:16])),
		Payload: p[16:],
	}, nil
}

// resultRef peeks the (slice, item) coordinates of an encoded Result
// payload without copying it — the simulated network uses it to match
// frames against the fault plan.
func resultRef(p []byte) (slice, item int, ok bool) {
	if len(p) < 16 {
		return 0, 0, false
	}
	return int(binary.LittleEndian.Uint32(p[0:4])),
		int(binary.LittleEndian.Uint32(p[12:16])), true
}

// Backoff computes deterministically jittered exponential delays: the
// delay for attempt n is base·2ⁿ (capped at max) scaled by a jitter in
// [0.5, 1.5) drawn from (seed, scope, n) alone. Pure per attempt — the
// same worker retrying the same attempt always waits the same span, so a
// chaos run's timing is replayable, yet distinct scopes (workers, send
// paths) decorrelate and never stampede in sync.
type Backoff struct {
	seed  int64
	scope string
	base  int64
	max   int64
}

// NewBackoff builds a backoff policy. base and max are in clock units;
// non-positive values fall back to 1 and 64·base.
func NewBackoff(seed int64, scope string, base, max int64) *Backoff {
	if base <= 0 {
		base = 1
	}
	if max <= 0 {
		max = 64 * base
	}
	return &Backoff{seed: seed, scope: scope, base: base, max: max}
}

// Delay returns the wait before retry attempt (0-based).
func (b *Backoff) Delay(attempt int) int64 {
	d := b.base
	for i := 0; i < attempt && d < b.max; i++ {
		d *= 2
	}
	if d > b.max {
		d = b.max
	}
	// Scopes are caller-chosen identifiers (worker index, send path), so
	// the label is parameter-derived by design, like faultinject's scopes.
	//pinlint:allow detrandflow backoff scope is a caller-chosen identifier; distinct scopes must yield distinct jitter streams
	rng := detrand.New(b.seed).Child("shardnet/backoff/"+b.scope).ChildN("attempt", attempt)
	jittered := d/2 + int64(rng.Float64()*float64(d))
	if jittered < 1 {
		jittered = 1
	}
	return jittered
}
