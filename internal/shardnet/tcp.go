package shardnet

// tcp.go is the real transport: length-prefixed, CRC32C-checksummed
// frames over TCP, reusing the journal's framing discipline — the same
// [len u32 LE][crc32c u32 LE][type byte][payload] layout, under its own
// magic so a wire stream and a WAL can never be confused for each other.
// A frame that arrives torn (short read, checksum failure) means the
// stream is broken, never silently resynchronized: the connection dies
// and the lease protocol recovers, exactly like a crash against a WAL's
// torn tail.
//
// This file is the only place in the package that reads the wall clock,
// concentrated in wallClock.Now and wallDeadline (both in the pinlint
// AllowedWallClock table): everything else schedules against the Clock
// interface, which the simulated network implements with a logical
// clock.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"os"
	"sync"
	"time"
)

const (
	// wireMagic opens every TCP connection, from both sides. Versioned
	// like the journal's: an unknown magic is rejected, never guessed at.
	wireMagic = "PINNET1\n"

	wireHeaderSize = 8

	// MaxWireFrame bounds one frame's (type+payload) length, mirroring
	// journal.MaxFrame: a corrupt length field must not provoke a giant
	// allocation.
	MaxWireFrame = 64 << 20
)

var wireCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodeWireFrame renders [len][crc32c][type][payload].
func encodeWireFrame(f Frame) []byte {
	body := make([]byte, wireHeaderSize+1+len(f.Payload))
	body[wireHeaderSize] = f.Type
	copy(body[wireHeaderSize+1:], f.Payload)
	binary.LittleEndian.PutUint32(body[0:4], uint32(1+len(f.Payload)))
	binary.LittleEndian.PutUint32(body[4:8], crc32.Checksum(body[wireHeaderSize:], wireCastagnoli))
	return body
}

// wallClock implements Clock over real time, in nanoseconds.
type wallClock struct{}

// WallClock returns the wall-time Clock the TCP transport schedules on.
func WallClock() Clock { return wallClock{} }

func (wallClock) Now() int64 {
	return time.Now().UnixNano()
}

func (c wallClock) WaitUntil(at int64) int64 {
	for {
		now := c.Now()
		if now >= at {
			return now
		}
		time.Sleep(time.Duration(at - now))
	}
}

// wallDeadline converts a relative wait in nanoseconds to the absolute
// time.Time the net.Conn deadline API wants. wait <= 0 clears the
// deadline.
func wallDeadline(wait int64) time.Time {
	if wait <= 0 {
		return time.Time{}
	}
	return time.Now().Add(time.Duration(wait))
}

// TCPOptions tune a TCP listener or dialer. Zero values pick defaults
// generous enough for loopback and LAN runs.
type TCPOptions struct {
	// SendTimeout bounds each frame write; an expired write breaks the
	// connection (the coordinator's retry/backoff runs above this).
	SendTimeout time.Duration
	// HandshakeTimeout bounds the magic exchange on connect.
	HandshakeTimeout time.Duration
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.SendTimeout <= 0 {
		o.SendTimeout = 10 * time.Second
	}
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 10 * time.Second
	}
	return o
}

// TCPListener accepts framed worker connections.
type TCPListener struct {
	ln  net.Listener
	opt TCPOptions
}

// ListenTCP binds addr (host:port; ":0" picks a free port).
func ListenTCP(addr string, opt TCPOptions) (*TCPListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("shardnet: listen %s: %w", addr, err)
	}
	return &TCPListener{ln: ln, opt: opt.withDefaults()}, nil
}

// Addr returns the bound address, for workers to dial.
func (l *TCPListener) Addr() string { return l.ln.Addr().String() }

// Accept waits for a worker connection and completes the magic exchange.
// A connection that fails the handshake (a port scanner, a stale peer) is
// dropped and the listener keeps accepting; Accept only errors once the
// listener itself is closed.
func (l *TCPListener) Accept() (Conn, error) {
	for {
		c, err := l.ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("shardnet: accept: %w", ErrClosed)
		}
		tc := newTCPConn(c, l.opt)
		if err := tc.handshake(); err != nil {
			c.Close()
			continue
		}
		return tc, nil
	}
}

// Close stops accepting. Established connections stay up.
func (l *TCPListener) Close() error { return l.ln.Close() }

// TCPDialer dials the coordinator.
type TCPDialer struct {
	Addr string
	Opt  TCPOptions
}

// Dial connects and completes the magic exchange.
func (d TCPDialer) Dial() (Conn, error) {
	opt := d.Opt.withDefaults()
	c, err := net.DialTimeout("tcp", d.Addr, opt.HandshakeTimeout)
	if err != nil {
		return nil, fmt.Errorf("shardnet: dial %s: %w", d.Addr, err)
	}
	tc := newTCPConn(c, opt)
	if err := tc.handshake(); err != nil {
		c.Close()
		return nil, err
	}
	return tc, nil
}

// tcpConn frames one TCP connection. Send is mutex-guarded (heartbeater
// and item loop share it); Recv assumes a single receiving goroutine.
type tcpConn struct {
	c   net.Conn
	opt TCPOptions

	wmu    sync.Mutex
	closed bool

	rbuf []byte
}

func newTCPConn(c net.Conn, opt TCPOptions) *tcpConn {
	return &tcpConn{c: c, opt: opt}
}

// handshake exchanges the magic in both directions, bounded by the
// handshake timeout.
func (t *tcpConn) handshake() error {
	if err := t.c.SetDeadline(wallDeadline(int64(t.opt.HandshakeTimeout))); err != nil {
		return fmt.Errorf("shardnet: handshake: %w", err)
	}
	if _, err := t.c.Write([]byte(wireMagic)); err != nil {
		return fmt.Errorf("shardnet: handshake write: %w", ErrClosed)
	}
	got := make([]byte, len(wireMagic))
	if _, err := io.ReadFull(t.c, got); err != nil {
		return fmt.Errorf("shardnet: handshake read: %w", ErrClosed)
	}
	if string(got) != wireMagic {
		return fmt.Errorf("shardnet: peer is not a pinscope shard endpoint (bad magic %q)", got)
	}
	return t.c.SetDeadline(time.Time{})
}

// Send writes one frame inside the send timeout; an expired or partial
// write breaks the connection.
func (t *tcpConn) Send(f Frame) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	if t.closed {
		return ErrClosed
	}
	if err := t.c.SetWriteDeadline(wallDeadline(int64(t.opt.SendTimeout))); err != nil {
		return ErrClosed
	}
	if _, err := t.c.Write(encodeWireFrame(f)); err != nil {
		return ErrClosed
	}
	return nil
}

// SendTorn writes only the first torn bytes of the frame and breaks the
// connection — the wire image of a worker dying mid-send. The fault
// plan's mid-stream shard death uses it; the receiver's framing must
// discard the torn prefix with the connection, never let it near a WAL.
func (t *tcpConn) SendTorn(f Frame, torn int) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	if t.closed {
		return ErrClosed
	}
	frame := encodeWireFrame(f)
	if torn < 0 {
		torn = 0
	}
	if torn > len(frame) {
		torn = len(frame)
	}
	t.c.SetWriteDeadline(wallDeadline(int64(t.opt.SendTimeout)))
	if torn > 0 {
		t.c.Write(frame[:torn])
	}
	t.closed = true
	return t.c.Close()
}

// Recv reads one verified frame. wait > 0 bounds the wait in
// nanoseconds; a timeout with no bytes read is ErrRecvTimeout, while a
// timeout mid-frame — like any framing violation — is a broken stream.
func (t *tcpConn) Recv(wait int64) (Frame, error) {
	if err := t.c.SetReadDeadline(wallDeadline(wait)); err != nil {
		return Frame{}, ErrClosed
	}
	header := make([]byte, wireHeaderSize)
	if n, err := io.ReadFull(t.c, header); err != nil {
		if n == 0 && errors.Is(err, os.ErrDeadlineExceeded) {
			return Frame{}, ErrRecvTimeout
		}
		return Frame{}, ErrClosed
	}
	length := int64(binary.LittleEndian.Uint32(header[0:4]))
	wantCRC := binary.LittleEndian.Uint32(header[4:8])
	if length < 1 || length > MaxWireFrame {
		return Frame{}, ErrClosed
	}
	if int64(cap(t.rbuf)) < length {
		t.rbuf = make([]byte, length)
	}
	body := t.rbuf[:length]
	if _, err := io.ReadFull(t.c, body); err != nil {
		return Frame{}, ErrClosed
	}
	if crc32.Checksum(body, wireCastagnoli) != wantCRC {
		return Frame{}, ErrClosed
	}
	payload := make([]byte, length-1)
	copy(payload, body[1:])
	return Frame{Type: body[0], Payload: payload}, nil
}

func (t *tcpConn) Close() error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	return t.c.Close()
}
