GO ?= go

.PHONY: build test lint check bench chaos export serve

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs pinlint, the repo's custom invariant suite (see DESIGN.md
# "Invariants"): determinism in simulation packages, map-order escapes,
# snapshot export shape, and the serving layer's atomic swap discipline.
lint:
	$(GO) run ./cmd/pinlint ./...

# check is the full health gate: gofmt + build + explicit vet pass list +
# pinlint + shuffled tests + race pass over the concurrent packages. CI
# and pre-commit should run this.
check:
	./scripts/check.sh

bench:
	$(GO) test . -run NONE -bench . -benchtime 1x

# chaos reruns the fault-injection sweep on its own (it is the slowest
# benchmark; see EXPERIMENTS.md for the expected drift envelope).
chaos:
	$(GO) test . -run NONE -bench BenchmarkChaosSweep -benchtime 1x -v

# export regenerates the committed paper-scale snapshot that pinscoped
# serves and the serving benchmarks load.
export:
	$(GO) run ./cmd/pinstudy -scale paper -export dataset_paper_scale.json

# serve runs the pinning-intelligence query service over the committed
# snapshot. SIGHUP or POST /v1/reload swaps the snapshot in place.
serve:
	$(GO) run ./cmd/pinscoped -data dataset_paper_scale.json
