GO ?= go

.PHONY: build test check bench chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the full health gate: build + vet + tests + race pass over the
# concurrent packages. CI and pre-commit should run this.
check:
	./scripts/check.sh

bench:
	$(GO) test . -run NONE -bench . -benchtime 1x

# chaos reruns the fault-injection sweep on its own (it is the slowest
# benchmark; see EXPERIMENTS.md for the expected drift envelope).
chaos:
	$(GO) test . -run NONE -bench BenchmarkChaosSweep -benchtime 1x -v
