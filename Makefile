GO ?= go

.PHONY: build test lint lint-baseline check bench chaos export serve resume-demo shard-demo timeline-demo

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs pinlint, the repo's custom invariant suite (see DESIGN.md
# "Invariants" and "Static analysis engine"): determinism in simulation
# packages, map-order escapes, snapshot export shape, the serving layer's
# atomic swap discipline, goroutine lifetimes, lock safety, journal
# discipline, detrand label lineage, and dropped write-path errors.
lint:
	$(GO) run ./cmd/pinlint ./...

# lint-baseline regenerates lint_baseline.json, the accepted-findings
# snapshot scripts/lint_diff.sh diffs against: CI fails only on findings
# not in the baseline. Run after deliberately fixing or accepting
# findings, and commit the result — the baseline diff is the reviewable
# record of what changed.
lint-baseline:
	$(GO) run ./cmd/pinlint -write-baseline lint_baseline.json ./...

# check is the full health gate: gofmt + build + explicit vet pass list +
# pinlint + shuffled tests + race pass over the concurrent packages. CI
# and pre-commit should run this.
check:
	./scripts/check.sh

# bench runs the full benchmark suite plus the crypto-plane trajectory
# (warm/cold end-to-end study + micro benches), the sharded-coordinator
# pair, and the longitudinal three-point sweep, writes BENCH_7.json at the
# repo root and diffs it against the previous BENCH_*.json snapshot.
bench:
	./scripts/bench.sh

# chaos reruns the fault-injection sweep on its own (it is the slowest
# benchmark; see EXPERIMENTS.md for the expected drift envelope).
chaos:
	$(GO) test . -run NONE -bench BenchmarkChaosSweep -benchtime 1x -v

# export regenerates the committed paper-scale snapshot that pinscoped
# serves and the serving benchmarks load.
export:
	$(GO) run ./cmd/pinstudy -scale paper -export dataset_paper_scale.json

# serve runs the pinning-intelligence query service over the committed
# snapshot. SIGHUP or POST /v1/reload swaps the snapshot in place.
serve:
	$(GO) run ./cmd/pinscoped -data dataset_paper_scale.json

# resume-demo shows crash-only operation end to end: a mini study is killed
# by fault injection after 40 journaled results (the leading "-" expects
# that failure), then resumed from the journal; the resumed export must be
# byte-identical to an uninterrupted run's.
resume-demo:
	rm -f /tmp/pinscope-demo.wal /tmp/pinscope-resumed.json* /tmp/pinscope-clean.json*
	$(GO) run ./cmd/pinstudy -scale mini -export /tmp/pinscope-clean.json > /dev/null
	-$(GO) run ./cmd/pinstudy -scale mini -journal /tmp/pinscope-demo.wal -kill-after 40 -kill-torn 5 > /dev/null
	$(GO) run ./cmd/pinstudy -scale mini -journal /tmp/pinscope-demo.wal -resume -export /tmp/pinscope-resumed.json > /dev/null
	cmp /tmp/pinscope-clean.json /tmp/pinscope-resumed.json
	@echo "resume-demo: resumed export is byte-identical to the uninterrupted run"

# shard-demo shows the crash-tolerant sharded coordinator end to end: the
# mini study runs as 4 crash-only slices with two workers killed mid-slice
# (survivors take over the expired leases and resume from the dead shards'
# journals), then the slice journals are stream-merged; the merged export
# must be byte-identical to an unsharded same-seed run's.
shard-demo:
	rm -rf /tmp/pinscope-shards /tmp/pinscope-sharded.json* /tmp/pinscope-unsharded.json*
	$(GO) run ./cmd/pinstudy -scale mini -export /tmp/pinscope-unsharded.json > /dev/null
	$(GO) run ./cmd/pinstudy -scale mini -shards 4 -journal /tmp/pinscope-shards -shard-kill 1@3,3@5 -kill-torn 9
	$(GO) run ./cmd/pinstudy -scale mini -shards 4 -journal /tmp/pinscope-shards -merge -export /tmp/pinscope-sharded.json
	cmp /tmp/pinscope-unsharded.json /tmp/pinscope-sharded.json
	@echo "shard-demo: merged sharded export is byte-identical to the unsharded run"

# timeline-demo shows the longitudinal study mode end to end: the mini
# universe is replayed across three root-program timeline points (the froyo
# and kitkat Android releases and a public-CA distrust event), the sweep is
# killed mid-timeline by fault injection while measuring the kitkat point
# (the leading "-" expects that failure), then resumed from the per-point
# journals; every resumed per-point export must be byte-identical to the
# uninterrupted sweep's.
timeline-demo:
	rm -rf /tmp/pinscope-timeline /tmp/pinscope-tl-clean* /tmp/pinscope-tl-resumed*
	$(GO) run ./cmd/pinstudy -scale mini -timeline -points froyo,kitkat,distrust-ca-distrust -export /tmp/pinscope-tl-clean.json > /dev/null
	-$(GO) run ./cmd/pinstudy -scale mini -timeline -points froyo,kitkat,distrust-ca-distrust -journal /tmp/pinscope-timeline -kill-after 40 -kill-torn 5 -kill-at-point kitkat > /dev/null
	$(GO) run ./cmd/pinstudy -scale mini -timeline -points froyo,kitkat,distrust-ca-distrust -journal /tmp/pinscope-timeline -export /tmp/pinscope-tl-resumed.json > /dev/null
	cmp /tmp/pinscope-tl-clean-froyo.json /tmp/pinscope-tl-resumed-froyo.json
	cmp /tmp/pinscope-tl-clean-kitkat.json /tmp/pinscope-tl-resumed-kitkat.json
	cmp /tmp/pinscope-tl-clean-distrust-ca-distrust.json /tmp/pinscope-tl-resumed-distrust-ca-distrust.json
	@echo "timeline-demo: resumed per-point exports are byte-identical to the uninterrupted sweep"
