GO ?= go

.PHONY: build test check bench chaos export serve

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the full health gate: build + vet + tests + race pass over the
# concurrent packages. CI and pre-commit should run this.
check:
	./scripts/check.sh

bench:
	$(GO) test . -run NONE -bench . -benchtime 1x

# chaos reruns the fault-injection sweep on its own (it is the slowest
# benchmark; see EXPERIMENTS.md for the expected drift envelope).
chaos:
	$(GO) test . -run NONE -bench BenchmarkChaosSweep -benchtime 1x -v

# export regenerates the committed paper-scale snapshot that pinscoped
# serves and the serving benchmarks load.
export:
	$(GO) run ./cmd/pinstudy -scale paper -export dataset_paper_scale.json

# serve runs the pinning-intelligence query service over the committed
# snapshot. SIGHUP or POST /v1/reload swaps the snapshot in place.
serve:
	$(GO) run ./cmd/pinscoped -data dataset_paper_scale.json
