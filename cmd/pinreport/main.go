// Command pinreport re-analyzes an exported study dataset offline, the way
// downstream researchers consume the dataset the paper releases: no world,
// no devices — just the JSON verdicts.
//
// Usage:
//
//	pinstudy -scale mini -export study.json
//	pinreport -in study.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"pinscope/internal/core"
	"pinscope/internal/stats"
)

func main() {
	in := flag.String("in", "", "exported dataset JSON (from pinstudy -export)")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "pinreport: -in is required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pinreport:", err)
		os.Exit(1)
	}
	defer f.Close()
	ds, err := core.LoadDataset(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pinreport:", err)
		os.Exit(1)
	}

	fmt.Printf("dataset: seed %d, %d apps, %d pinned destinations\n\n",
		ds.Meta.Seed, len(ds.Apps), len(ds.Destinations))

	// Prevalence per dataset/platform (the Table 3 cells, recomputed from
	// the released verdicts alone).
	type cell struct{ n, dyn, static, nsc int }
	cells := map[string]*cell{}
	for _, a := range ds.Apps {
		for _, d := range a.Datasets {
			key := d + " " + a.Platform
			c := cells[key]
			if c == nil {
				c = &cell{}
				cells[key] = c
			}
			c.n++
			if a.PinsDynamic {
				c.dyn++
			}
			if a.StaticMaterial {
				c.static++
			}
			if a.NSCPinSet {
				c.nsc++
			}
		}
	}
	keys := make([]string, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println("prevalence by dataset (recomputed from released verdicts):")
	for _, k := range keys {
		c := cells[k]
		fmt.Printf("  %-18s n=%-5d dynamic %5.2f%%  static %5.2f%%  nsc %5.2f%%\n",
			k, c.n, stats.Percent(c.dyn, c.n), stats.Percent(c.static, c.n), stats.Percent(c.nsc, c.n))
	}

	// Category leaders.
	fmt.Println("\ntop pinning categories:")
	for _, plat := range []string{"android", "ios"} {
		counts := map[string][2]int{} // category -> [apps, pinning]
		for _, a := range ds.Apps {
			if a.Platform != plat {
				continue
			}
			v := counts[a.Category]
			v[0]++
			if a.PinsDynamic {
				v[1]++
			}
			counts[a.Category] = v
		}
		type row struct {
			cat string
			pct float64
			n   int
		}
		var rows []row
		for cat, v := range counts {
			if v[1] == 0 || v[0] < 5 {
				continue
			}
			rows = append(rows, row{cat, stats.Percent(v[1], v[0]), v[1]})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].pct != rows[j].pct {
				return rows[i].pct > rows[j].pct
			}
			return rows[i].cat < rows[j].cat
		})
		fmt.Printf("  %s:\n", plat)
		for i, r := range rows {
			if i == 5 {
				break
			}
			fmt.Printf("    %-22s %5.1f%% (%d apps)\n", r.cat, r.pct, r.n)
		}
	}

	// Destination PKI split.
	var def, custom, selfs, unavail int
	for _, d := range ds.Destinations {
		switch {
		case d.DefaultPKI:
			def++
		case d.CustomPKI:
			custom++
		case d.SelfSigned:
			selfs++
		case d.Unavailable:
			unavail++
		}
	}
	fmt.Printf("\npinned destinations: %d default-PKI, %d custom-PKI, %d self-signed, %d unavailable\n",
		def, custom, selfs, unavail)

	// Circumvention coverage.
	circ, pinners := 0, 0
	for _, a := range ds.Apps {
		if !a.PinsDynamic {
			continue
		}
		pinners++
		if len(a.CircumventedDomains) > 0 {
			circ++
		}
	}
	fmt.Printf("pinning apps: %d; with at least one hook-circumvented destination: %d (%.1f%%)\n",
		pinners, circ, stats.Percent(circ, pinners))
}
