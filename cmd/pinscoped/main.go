// Command pinscoped serves pinning intelligence from exported study
// snapshots (pinstudy -export output) as a long-running HTTP service:
// per-app verdicts, reverse pin-hash lookups, per-destination pinner lists
// and cached aggregate tables.
//
// Usage:
//
//	pinstudy -scale paper -export snapshot.json
//	pinscoped -data snapshot.json [-data more.json] [-addr :8093]
//
//	curl localhost:8093/v1/app/android/com.example.app
//	curl localhost:8093/v1/pins?spki=sha256:...
//	curl localhost:8093/v1/dest/api.example.com
//	curl localhost:8093/v1/tables/1?format=text
//	curl localhost:8093/v1/stats
//	curl -X POST localhost:8093/v1/reload     # or: kill -HUP <pid>
//
// -selftest runs the export → load → query closed loop against an
// in-process listener and exits non-zero on any wrong answer; see
// selftest.go.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pinscope/internal/pinserve"
)

func main() {
	var paths []string
	flag.Func("data", "snapshot JSON file (repeatable; later files override earlier apps)",
		func(v string) error {
			for _, p := range strings.Split(v, ",") {
				if p = strings.TrimSpace(p); p != "" {
					paths = append(paths, p)
				}
			}
			return nil
		})
	addr := flag.String("addr", ":8093", "listen address")
	maxInFlight := flag.Int("max-inflight", 256, "bounded request concurrency")
	timeout := flag.Duration("timeout", 2*time.Second, "per-request timeout")
	grace := flag.Duration("grace", 5*time.Second, "shutdown drain budget")
	selftest := flag.Bool("selftest", false, "run the export→load→query closed loop and exit")
	selftestSeed := flag.Int64("selftest-seed", 1, "world seed for the selftest mini study (no -data)")
	selftestClients := flag.Int("selftest-clients", 8, "closed-loop client goroutines in -selftest")
	selftestOps := flag.Int("selftest-ops", 40000, "total selftest lookups across all clients")
	flag.Parse()

	if *selftest {
		if err := runSelftest(paths, *selftestSeed, *selftestClients, *selftestOps); err != nil {
			fmt.Fprintf(os.Stderr, "pinscoped: selftest FAILED: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "pinscoped: at least one -data snapshot is required (or -selftest)")
		os.Exit(2)
	}
	srv, err := pinserve.New(pinserve.Options{
		Paths:          paths,
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *timeout,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pinscoped: %v\n", err)
		os.Exit(1)
	}
	st := srv.Index().Stats()
	fmt.Fprintf(os.Stderr, "pinscoped: loaded %d snapshot(s): %d apps, %d destinations, %d unique pins (build %.1fms)\n",
		st.Snapshots, st.Apps, st.Destinations, st.UniquePins, float64(st.BuildMicros)/1000)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// SIGHUP swaps in freshly re-read snapshots with zero downtime; a
	// failed reload logs and keeps the old index serving.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := srv.Reload(); err != nil {
				fmt.Fprintf(os.Stderr, "pinscoped: reload failed (still serving previous snapshot): %v\n", err)
				continue
			}
			fmt.Fprintf(os.Stderr, "pinscoped: snapshot reloaded: %d apps\n", srv.Index().Stats().Apps)
		}
	}()

	fmt.Fprintf(os.Stderr, "pinscoped: serving on %s\n", *addr)
	if err := srv.ListenAndServe(ctx, *addr, *grace); err != nil {
		fmt.Fprintf(os.Stderr, "pinscoped: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "pinscoped: drained, bye")
}
