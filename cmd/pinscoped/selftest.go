package main

// selftest.go is the closed-loop proof that the serving layer answers the
// snapshot truthfully under concurrency: export → load → query. With no
// -data it runs a mini study in-process, exports it through the real JSON
// path, and re-loads the file; with -data it drives the given snapshots
// (e.g. the committed paper-scale dataset). Client goroutines then replay
// a deterministic query plan — hits validated field-by-field against the
// dataset, misses expecting 404, malformed ids expecting 400 — with a
// zero-downtime reload fired mid-flight, and the run reports throughput
// and latency percentiles from /v1/stats.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"pinscope"
	"pinscope/internal/atomicio"
	"pinscope/internal/core"
	"pinscope/internal/pinserve"
)

// selftestCase is one deterministic request with its answer validator.
type selftestCase struct {
	method string
	path   string
	check  func(status int, body []byte) error
}

func runSelftest(paths []string, seed int64, clients, totalOps int) error {
	datasets, cleanup, err := selftestDatasets(paths, seed)
	if err != nil {
		return err
	}
	defer cleanup()

	srv, err := pinserve.New(pinserve.Options{Paths: paths})
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		if err := srv.Load(datasets...); err != nil {
			return err
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln, time.Second) }()
	base := "http://" + ln.Addr().String()

	cases := buildCases(datasets)
	fmt.Fprintf(os.Stderr, "pinscoped: selftest: %d apps, %d query cases, %d clients, %d ops on %s\n",
		srv.Index().Stats().Apps, len(cases), clients, totalOps, base)

	if clients < 1 {
		clients = 1
	}
	perClient := totalOps / clients
	var (
		wg    sync.WaitGroup
		errMu sync.Mutex
		first error
	)
	fail := func(err error) {
		errMu.Lock()
		if first == nil {
			first = err
		}
		errMu.Unlock()
		cancel()
	}
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for i := 0; i < perClient; i++ {
				if ctx.Err() != nil {
					return
				}
				// Client 0 exercises the zero-downtime reload mid-flight;
				// everyone else keeps querying straight through it.
				if c == 0 && i == perClient/2 {
					if err := doCase(client, base, selftestCase{method: "POST", path: "/v1/reload",
						check: expectStatus(http.StatusOK)}); err != nil {
						fail(fmt.Errorf("mid-flight reload: %w", err))
						return
					}
				}
				tc := cases[(c*7919+i)%len(cases)]
				if err := doCase(client, base, tc); err != nil {
					fail(fmt.Errorf("client %d op %d %s: %w", c, i, tc.path, err))
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if first != nil {
		return first
	}

	// Pull the service's own accounting for the report.
	stats, err := fetchStats(base)
	if err != nil {
		return err
	}
	ops := clients * perClient
	fmt.Printf("pinscoped selftest: OK\n")
	fmt.Printf("  lookups:      %d in %s (%.0f lookups/sec, %d clients)\n",
		ops, elapsed.Round(time.Millisecond), float64(ops)/elapsed.Seconds(), clients)
	for _, ep := range stats.Endpoints {
		fmt.Printf("  %-12s %7d reqs  p50 ≤%dµs  p99 ≤%dµs  (4xx %d expected)\n",
			ep.Endpoint, ep.Requests, ep.P50Micros, ep.P99Micros, ep.Errors4xx)
	}
	fmt.Printf("  reloads mid-flight: %d, snapshot apps: %d\n", stats.Reloads, stats.Snapshot.Apps)

	cancel()
	return <-done
}

// selftestDatasets loads -data snapshots, or generates one via a mini
// study exported through the real file path.
func selftestDatasets(paths []string, seed int64) ([]*core.ExportedDataset, func(), error) {
	cleanup := func() {}
	if len(paths) > 0 {
		var out []*core.ExportedDataset
		for _, p := range paths {
			ds, err := core.LoadExportedDataset(p)
			if err != nil {
				return nil, cleanup, err
			}
			out = append(out, ds)
		}
		return out, cleanup, nil
	}
	fmt.Fprintf(os.Stderr, "pinscoped: selftest: running mini study (seed %d) and exporting...\n", seed)
	study, err := pinscope.Run(pinscope.MiniConfig(seed))
	if err != nil {
		return nil, cleanup, err
	}
	dir, err := os.MkdirTemp("", "pinscoped-selftest")
	if err != nil {
		return nil, cleanup, err
	}
	cleanup = func() { os.RemoveAll(dir) }
	path := filepath.Join(dir, "snapshot.json")
	w, err := atomicio.Create(path, atomicio.WithChecksum())
	if err != nil {
		return nil, cleanup, err
	}
	if err := study.ExportDataset(w); err != nil {
		w.Close()
		return nil, cleanup, err
	}
	if err := w.Commit(); err != nil {
		w.Close()
		return nil, cleanup, err
	}
	ds, err := core.LoadExportedDataset(path)
	if err != nil {
		return nil, cleanup, err
	}
	return []*core.ExportedDataset{ds}, cleanup, nil
}

// buildCases derives the deterministic query plan from the dataset: every
// app's verdict, every pinned app's destinations and pins, plus fixed
// miss/malformed/table/health cases.
func buildCases(datasets []*core.ExportedDataset) []selftestCase {
	var cases []selftestCase
	appCase := func(a core.ExportedApp) selftestCase {
		want := a
		return selftestCase{method: "GET",
			path: "/v1/app/" + want.Platform + "/" + url.PathEscape(want.ID),
			check: func(status int, body []byte) error {
				if status != http.StatusOK {
					return fmt.Errorf("status %d", status)
				}
				var got core.ExportedApp
				if err := json.Unmarshal(body, &got); err != nil {
					return err
				}
				if got.Name != want.Name || got.PinsDynamic != want.PinsDynamic ||
					len(got.PinnedDomains) != len(want.PinnedDomains) {
					return fmt.Errorf("answer drifted from snapshot: got %q/%v, want %q/%v",
						got.Name, got.PinsDynamic, want.Name, want.PinsDynamic)
				}
				return nil
			}}
	}
	for _, ds := range datasets {
		for _, a := range ds.Apps {
			cases = append(cases, appCase(a))
			key := pinserve.AppKey(a.Platform, a.ID)
			for _, d := range a.PinnedDomains {
				host, appKey := d, key
				cases = append(cases, selftestCase{method: "GET",
					path: "/v1/dest/" + url.PathEscape(host),
					check: func(status int, body []byte) error {
						if status != http.StatusOK {
							return fmt.Errorf("status %d", status)
						}
						var di pinserve.DestInfo
						if err := json.Unmarshal(body, &di); err != nil {
							return err
						}
						for _, k := range di.PinnedBy {
							if k == appKey {
								return nil
							}
						}
						return fmt.Errorf("pinner %s missing from %s", appKey, host)
					}})
			}
			for _, pin := range a.PinSPKIHashes {
				spki, appKey := pin, key
				cases = append(cases, selftestCase{method: "GET",
					path: "/v1/pins?spki=" + url.QueryEscape(spki),
					check: func(status int, body []byte) error {
						if status != http.StatusOK {
							return fmt.Errorf("status %d", status)
						}
						var resp struct {
							Apps []struct {
								Key string `json:"key"`
							} `json:"apps"`
						}
						if err := json.Unmarshal(body, &resp); err != nil {
							return err
						}
						for _, m := range resp.Apps {
							if m.Key == appKey {
								return nil
							}
						}
						return fmt.Errorf("app %s missing from pin %s", appKey, spki)
					}})
			}
		}
	}
	// Distrust-impact lookups: every probed destination with a recorded
	// trust anchor must appear in its root's blast radius. (Version-1
	// snapshots carry no root fingerprints; they simply add no cases.)
	for _, ds := range datasets {
		for _, p := range ds.Destinations {
			if p.RootFP == "" {
				continue
			}
			fp, host := p.RootFP, p.Host
			cases = append(cases, selftestCase{method: "GET",
				path: "/v1/distrust/" + url.PathEscape(fp),
				check: func(status int, body []byte) error {
					if status != http.StatusOK {
						return fmt.Errorf("status %d", status)
					}
					var a pinserve.DistrustAnswer
					if err := json.Unmarshal(body, &a); err != nil {
						return err
					}
					for _, h := range a.Hosts {
						if h == host {
							return nil
						}
					}
					return fmt.Errorf("host %s missing from distrust answer for %.12s...", host, fp)
				}})
		}
	}
	// Misses, malformed ids, cached tables, health.
	cases = append(cases,
		selftestCase{method: "GET", path: "/v1/distrust/" + strings.Repeat("0", 64),
			check: expectStatus(http.StatusNotFound)},
		selftestCase{method: "GET", path: "/v1/distrust/not-a-fingerprint",
			check: expectStatus(http.StatusBadRequest)},
		selftestCase{method: "GET", path: "/v1/app/android/com.does.not.exist",
			check: expectStatus(http.StatusNotFound)},
		selftestCase{method: "GET", path: "/v1/app/windows/com.example",
			check: expectStatus(http.StatusBadRequest)},
		selftestCase{method: "GET", path: "/v1/dest/never-seen.example.org",
			check: expectStatus(http.StatusNotFound)},
		selftestCase{method: "GET", path: "/v1/pins?spki=sha256:0000000000000000000000000000000000000000000000000000000000000000",
			check: expectStatus(http.StatusOK)},
		selftestCase{method: "GET", path: "/v1/tables/1", check: expectStatus(http.StatusOK)},
		selftestCase{method: "GET", path: "/v1/tables/2", check: expectStatus(http.StatusOK)},
		selftestCase{method: "GET", path: "/v1/tables/3?format=text", check: expectStatus(http.StatusOK)},
		selftestCase{method: "GET", path: "/v1/tables/9", check: expectStatus(http.StatusNotFound)},
		selftestCase{method: "GET", path: "/v1/healthz", check: expectStatus(http.StatusOK)},
	)
	return cases
}

func expectStatus(want int) func(int, []byte) error {
	return func(status int, body []byte) error {
		if status != want {
			return fmt.Errorf("status %d, want %d (%.120s)", status, want, body)
		}
		return nil
	}
}

func doCase(client *http.Client, base string, tc selftestCase) error {
	req, err := http.NewRequest(tc.method, base+tc.path, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	return tc.check(resp.StatusCode, body)
}

func fetchStats(base string) (*statsPayload, error) {
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st statsPayload
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// statsPayload mirrors the fields of /v1/stats the selftest reports.
type statsPayload struct {
	Reloads  int64 `json:"reloads"`
	Snapshot struct {
		Apps int `json:"apps"`
	} `json:"snapshot"`
	Endpoints []pinserve.EndpointStats `json:"endpoints"`
}
