// Command worldgen generates a study world and prints its dataset overview
// (the Table 1 counterpart) plus infrastructure statistics, without running
// any analysis. Useful for inspecting what a seed produces.
//
// Usage:
//
//	worldgen [-seed N] [-scale mini|paper]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"pinscope/internal/stats"
	"pinscope/internal/worldgen"
)

func main() {
	seed := flag.Int64("seed", 0, "world seed (0 = default)")
	scale := flag.String("scale", "mini", "mini or paper")
	flag.Parse()

	var params worldgen.Params
	switch *scale {
	case "paper":
		params = worldgen.DefaultParams()
		if *seed != 0 {
			params.Seed = *seed
		}
	case "mini":
		s := *seed
		if s == 0 {
			s = 1
		}
		params = worldgen.TestParams(s)
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	start := time.Now()
	w, err := worldgen.Build(params)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("world built in %s (seed %d)\n\n", time.Since(start).Round(time.Millisecond), params.Seed)
	fmt.Printf("stores:  Android %d listings, iOS %d listings\n",
		w.StoreAndroid.Len(), w.StoreIOS.Len())
	fmt.Printf("hosts:   %d destination servers (%d CT-logged certificates)\n",
		len(w.Hosts), w.CT.Size())
	fmt.Printf("whois:   %d registrations\n", w.Whois.Len())
	fmt.Printf("pairs:   %d common apps on both platforms\n\n", len(w.CommonPairs))

	for _, ds := range w.DS.All() {
		c := stats.NewCounter()
		for _, l := range ds.Listings {
			c.Inc(l.Category)
		}
		fmt.Printf("%s %s (n=%d), top categories:\n", ds.Name, ds.Platform, len(ds.Listings))
		for i, kv := range c.Top(10) {
			fmt.Printf("  %2d. %-20s %5.1f%%\n", i+1, kv.Key, stats.Percent(kv.Count, len(ds.Listings)))
		}
		fmt.Println()
	}

	// Ground-truth summary (generator bookkeeping, not a measurement).
	type key struct{ ds, plat string }
	pins := map[key]int{}
	totals := map[key]int{}
	for _, ds := range w.DS.All() {
		for _, a := range w.Apps(ds) {
			k := key{ds.Name, string(a.Platform)}
			totals[k]++
			if a.Truth.PinsAtRuntime {
				pins[k]++
			}
		}
	}
	var keys []key
	for k := range totals {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].ds != keys[j].ds {
			return keys[i].ds < keys[j].ds
		}
		return keys[i].plat < keys[j].plat
	})
	fmt.Println("ground-truth runtime pinning (what the pipelines should rediscover):")
	for _, k := range keys {
		fmt.Printf("  %-8s %-8s %5.1f%% (%d/%d)\n", k.ds, k.plat,
			stats.Percent(pins[k], totals[k]), pins[k], totals[k])
	}
}
