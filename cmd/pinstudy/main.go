// Command pinstudy runs the complete reproduction of "A Comparative
// Analysis of Certificate Pinning in Android & iOS" (IMC '22) and prints
// every table and figure of the paper's evaluation.
//
// Usage:
//
//	pinstudy [-scale mini|paper] [-seed N] [-section table3] [-sweep] [-ablate]
//	         [-faults 0.1] [-retries 2] [-chaos]
//	         [-journal run.wal] [-resume] [-kill-after N] [-kill-torn K]
//	         [-shards N] [-shard-kill 1@3,2@0] [-merge]
//	         [-shard-listen host:port] [-shard-connect host:port] [-shard-scope label]
//	         [-timeline] [-points tag,tag,...] [-kill-at-point tag]
//	         [-coldcrypto] [-cpuprofile cpu.prof] [-memprofile mem.prof]
//
// The default paper scale studies ≈5,000 unique apps and takes a couple of
// minutes; -scale mini runs a few hundred apps in seconds.
//
// With -shards N the study runs as N crash-only slices under lease-based
// coordination, journaling into the -journal directory (one WAL per slice);
// -shard-kill injects deterministic worker deaths, and rerunning the same
// command resumes an interrupted run from the journals. -merge folds the
// completed slice journals into the exported dataset (-export, or stdout),
// byte-identical to an unsharded same-seed run's export.
//
// With -shard-listen the sharded run goes cross-machine: this process is
// the coordinator, serving the run over message-framed TCP, and any number
// of `pinstudy -shard-connect host:port` workers (started before, after,
// or restarted mid-run) dial in, receive the run configuration over the
// wire, and stream slice results back under the same lease protocol. The
// journals land on the coordinator's disk; merge as usual with -merge.
//
// With -timeline the study runs longitudinally: the same app universe is
// replayed across root-program releases and distrust events (-points picks
// the timeline points) and the time-axis report is printed. -journal names
// a directory holding one WAL per point; a killed sweep (-kill-after with
// -kill-at-point choosing where the cut lands) resumes by rerunning the
// same command without the kill flags. -export writes one snapshot per
// point as <export>-<tag>.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"pinscope"
	"pinscope/internal/atomicio"
)

func main() {
	scale := flag.String("scale", "paper", "study scale: mini, paper, or 100k")
	seed := flag.Int64("seed", 0, "world seed (0 = default)")
	section := flag.String("section", "", "render a single section (e.g. table3, figure5); empty = all")
	sweep := flag.Bool("sweep", false, "also run the sleep-window sweep (§4.2.1)")
	ablate := flag.Bool("ablate", false, "also run the methodology ablations")
	export := flag.String("export", "", "write the study dataset as JSON to this file")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	faults := flag.Float64("faults", 0, "fault-injection rate in [0,1] (0 = clean run)")
	retries := flag.Int("retries", 0, "per-app retry budget under faults (0 = default)")
	chaos := flag.Bool("chaos", false, "also run the chaos sweep (full study per fault rate)")
	jpath := flag.String("journal", "", "write-ahead journal path: stream results durably as they complete")
	resume := flag.Bool("resume", false, "resume from an existing -journal, replaying completed apps")
	killAfter := flag.Int("kill-after", 0, "fault injection: die after N journaled results (requires -journal)")
	killTorn := flag.Int("kill-torn", 0, "fault injection: bytes of the interrupted frame left on disk")
	shards := flag.Int("shards", 0, "run the study as N crash-only slices; -journal names the shard directory")
	shardKill := flag.String("shard-kill", "", "fault injection: comma-separated slice@afterN worker deaths (requires -shards)")
	merge := flag.Bool("merge", false, "merge a completed sharded run's journals into the dataset (requires -shards)")
	shardListen := flag.String("shard-listen", "", "serve a cross-machine sharded run: listen on host:port for shard workers (requires -shards and -journal)")
	shardConnect := flag.String("shard-connect", "", "join a cross-machine sharded run as a worker: dial the coordinator at host:port")
	shardScope := flag.String("shard-scope", "", "worker label for -shard-connect backoff jitter (default hostname-pid)")
	timeline := flag.Bool("timeline", false, "run longitudinally across root-program releases and distrust events")
	points := flag.String("points", "", "timeline points for -timeline (comma-separated tags; empty = all)")
	killAtPoint := flag.String("kill-at-point", "", "arm -kill-after only at this timeline point (requires -timeline)")
	coldCrypto := flag.Bool("coldcrypto", false, "disable the shared crypto plane (uncached baseline for profiling)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the study run to this file")
	memprofile := flag.String("memprofile", "", "write a post-study heap profile to this file")
	flag.Parse()

	var cfg pinscope.Config
	switch *scale {
	case "paper":
		cfg = pinscope.PaperConfig()
	case "mini":
		cfg = pinscope.MiniConfig(1)
	case "100k":
		cfg = pinscope.Config100k(1)
	default:
		fmt.Fprintf(os.Stderr, "unknown -scale %q (want mini, paper, or 100k)\n", *scale)
		os.Exit(2)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers
	if *faults < 0 || *faults > 1 {
		fmt.Fprintf(os.Stderr, "-faults %v outside [0,1]\n", *faults)
		os.Exit(2)
	}
	cfg.FaultRate = *faults
	cfg.Retries = *retries
	if (*resume || *killAfter > 0) && *jpath == "" {
		fmt.Fprintln(os.Stderr, "pinstudy: -resume and -kill-after require -journal")
		os.Exit(2)
	}
	cfg.JournalPath = *jpath
	cfg.Resume = *resume
	cfg.KillAfter = *killAfter
	cfg.KillTorn = *killTorn
	cfg.ColdCrypto = *coldCrypto

	if *shardConnect != "" {
		runShardWorker(*shardConnect, *shardScope)
		return
	}
	if *shardListen != "" {
		runShardServe(cfg, *shards, *jpath, *workers, *shardListen)
		return
	}
	if *shards > 0 || *merge || *shardKill != "" {
		runSharded(cfg, *shards, *shardKill, *killTorn, *jpath, *export, *workers, *merge)
		return
	}
	if *timeline || *points != "" || *killAtPoint != "" {
		runTimeline(cfg, *timeline, *points, *killAtPoint, *jpath, *export)
		return
	}

	var cpuOut *atomicio.Writer
	if *cpuprofile != "" {
		w, err := atomicio.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pinstudy: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(w); err != nil {
			fmt.Fprintf(os.Stderr, "pinstudy: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		cpuOut = w
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "pinstudy: building world and running study (%s scale, seed %d)...\n",
		*scale, cfg.Seed)
	study, err := pinscope.Run(cfg)
	if cpuOut != nil {
		// The profile covers exactly the study run; stop and persist it
		// before any error handling so failed runs still profile.
		pprof.StopCPUProfile()
		perr := cpuOut.Commit()
		cpuOut.Close()
		if perr != nil {
			fmt.Fprintf(os.Stderr, "pinstudy: cpuprofile: %v\n", perr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pinstudy: CPU profile written to %s\n", *cpuprofile)
	}
	if *memprofile != "" {
		w, merr := atomicio.Create(*memprofile)
		if merr == nil {
			runtime.GC() // settle to reachable heap before snapshotting
			if merr = pprof.WriteHeapProfile(w); merr == nil {
				merr = w.Commit()
			}
			w.Close()
		}
		if merr != nil {
			fmt.Fprintf(os.Stderr, "pinstudy: memprofile: %v\n", merr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pinstudy: heap profile written to %s\n", *memprofile)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pinstudy: %v\n", err)
		if pinscope.IsKilled(err) {
			fmt.Fprintf(os.Stderr, "pinstudy: journaled results survive in %s; rerun with -resume to continue\n", *jpath)
		}
		os.Exit(1)
	}
	if n := study.Resumed(); n > 0 {
		fmt.Fprintf(os.Stderr, "pinstudy: replayed %d journaled results\n", n)
	}
	fmt.Fprintf(os.Stderr, "pinstudy: study complete in %s\n\n", time.Since(start).Round(time.Millisecond))

	if *section != "" {
		out, err := study.Report(pinscope.Section(strings.ToLower(*section)))
		if err != nil {
			fmt.Fprintf(os.Stderr, "pinstudy: %v\navailable sections: %v\n", err, pinscope.Sections())
			os.Exit(2)
		}
		fmt.Println(out)
	} else {
		fmt.Println(study.FullReport())
	}

	if *sweep {
		out, err := study.SleepSweep([]float64{15, 30, 60}, sweepSample(*scale))
		if err != nil {
			fmt.Fprintf(os.Stderr, "pinstudy: sweep: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	if *ablate {
		out, err := study.Ablations(sweepSample(*scale))
		if err != nil {
			fmt.Fprintf(os.Stderr, "pinstudy: ablations: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	if *chaos {
		rates := []float64{0, 0.05, 0.1, 0.2}
		fmt.Fprintf(os.Stderr, "pinstudy: chaos sweep over rates %v (one full study each)...\n", rates)
		out, err := pinscope.ChaosReport(cfg, rates)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pinstudy: chaos: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	if *export != "" {
		w, err := atomicio.Create(*export, atomicio.WithChecksum())
		if err != nil {
			fmt.Fprintf(os.Stderr, "pinstudy: export: %v\n", err)
			os.Exit(1)
		}
		if err := study.ExportDataset(w); err == nil {
			err = w.Commit()
		}
		w.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pinstudy: export: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pinstudy: dataset written to %s\n", *export)
	}
}

func sweepSample(scale string) int {
	if scale == "paper" {
		return 400
	}
	return 60
}

// runTimeline handles the -timeline mode: the longitudinal sweep across
// root-program releases and distrust events, with per-point crash-only
// journals under -journal and one exported snapshot per point.
func runTimeline(cfg pinscope.Config, enabled bool, points, killAtPoint, dir, export string) {
	if !enabled {
		fmt.Fprintln(os.Stderr, "pinstudy: -points and -kill-at-point require -timeline")
		os.Exit(2)
	}
	cfg.JournalPath = "" // timeline runs journal per point under dir
	cfg.Resume = false   // point journals resume automatically
	var tags []string
	for _, t := range strings.Split(points, ",") {
		if t = strings.TrimSpace(t); t != "" {
			tags = append(tags, t)
		}
	}
	start := time.Now()
	fmt.Fprintf(os.Stderr, "pinstudy: longitudinal study (seed %d)...\n", cfg.Seed)
	ts, err := pinscope.RunTimeline(cfg, pinscope.TimelineOptions{
		Points: tags, Dir: dir, KillAtPoint: killAtPoint,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pinstudy: %v\n", err)
		if pinscope.IsKilled(err) {
			fmt.Fprintf(os.Stderr, "pinstudy: point journals survive in %s; rerun without the kill flags to resume\n", dir)
		}
		os.Exit(1)
	}
	if n := ts.Resumed(); n > 0 {
		fmt.Fprintf(os.Stderr, "pinstudy: replayed %d journaled results across points\n", n)
	}
	fmt.Fprintf(os.Stderr, "pinstudy: %d timeline points complete in %s\n\n",
		len(ts.Points()), time.Since(start).Round(time.Millisecond))
	fmt.Println(ts.Report())

	if export == "" {
		return
	}
	for _, tag := range ts.Points() {
		path := pointExportPath(export, tag)
		w, err := atomicio.Create(path, atomicio.WithChecksum())
		if err != nil {
			fmt.Fprintf(os.Stderr, "pinstudy: export: %v\n", err)
			os.Exit(1)
		}
		if err := ts.ExportPoint(w, tag); err == nil {
			err = w.Commit()
		}
		w.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pinstudy: export: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pinstudy: point %s written to %s\n", tag, path)
	}
}

// pointExportPath splices a point tag into the export filename:
// study.json + kitkat -> study-kitkat.json.
func pointExportPath(base, tag string) string {
	ext := filepath.Ext(base)
	return strings.TrimSuffix(base, ext) + "-" + tag + ext
}

// runSharded handles the -shards / -shard-kill / -merge modes: the study as
// a fleet of crash-only slices, and the streaming merge of their journals.
func runSharded(cfg pinscope.Config, shards int, shardKill string, killTorn int,
	dir, export string, workers int, merge bool) {
	if shards <= 0 {
		fmt.Fprintln(os.Stderr, "pinstudy: -shard-kill and -merge require -shards")
		os.Exit(2)
	}
	if dir == "" {
		fmt.Fprintln(os.Stderr, "pinstudy: -shards requires -journal (the shard-journal directory)")
		os.Exit(2)
	}
	cfg.JournalPath = "" // sharded runs journal per slice under dir
	kills, err := parseShardKills(shardKill)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pinstudy: %v\n", err)
		os.Exit(2)
	}
	opts := pinscope.ShardOptions{
		Shards: shards, Workers: workers, Dir: dir,
		Kills: kills, KillTorn: killTorn,
	}

	if merge {
		start := time.Now()
		var w *atomicio.Writer
		var out = os.Stdout
		if export != "" {
			w, err = atomicio.Create(export, atomicio.WithChecksum())
			if err != nil {
				fmt.Fprintf(os.Stderr, "pinstudy: merge: %v\n", err)
				os.Exit(1)
			}
			out = nil
		}
		if w != nil {
			err = pinscope.MergeShards(w, cfg, opts)
			if err == nil {
				err = w.Commit()
			}
			w.Close()
		} else {
			err = pinscope.MergeShards(out, cfg, opts)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pinstudy: merge: %v\n", err)
			os.Exit(1)
		}
		if export != "" {
			fmt.Fprintf(os.Stderr, "pinstudy: merged %d shard journals into %s in %s\n",
				shards, export, time.Since(start).Round(time.Millisecond))
		}
		return
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "pinstudy: sharded study (seed %d): %d shards into %s...\n",
		cfg.Seed, shards, dir)
	stats, err := pinscope.RunSharded(cfg, opts)
	if stats != nil {
		fmt.Fprintf(os.Stderr, "pinstudy: %d workers / %d shards: %d killed, %d leases expired, %d slices reassigned, %d results resumed from journals\n",
			stats.Workers, stats.Shards, stats.WorkersKilled, stats.LeasesExpired, stats.Reassigned, stats.ResumedFrames)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pinstudy: %v\n", err)
		fmt.Fprintf(os.Stderr, "pinstudy: shard journals survive in %s; rerun without -shard-kill to resume\n", dir)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "pinstudy: sharded run complete in %s; merge with -shards %d -merge\n",
		time.Since(start).Round(time.Millisecond), shards)
}

// runShardServe handles -shard-listen: the coordinator half of a
// cross-machine sharded run. Workers join with -shard-connect; the run
// resumes from the journals if interrupted, and -merge folds the result.
func runShardServe(cfg pinscope.Config, shards int, dir string, workers int, addr string) {
	if shards <= 0 {
		fmt.Fprintln(os.Stderr, "pinstudy: -shard-listen requires -shards")
		os.Exit(2)
	}
	if dir == "" {
		fmt.Fprintln(os.Stderr, "pinstudy: -shard-listen requires -journal (the shard-journal directory)")
		os.Exit(2)
	}
	cfg.JournalPath = "" // sharded runs journal per slice under dir
	start := time.Now()
	fmt.Fprintf(os.Stderr, "pinstudy: serving sharded study (seed %d): %d shards on %s, journals in %s...\n",
		cfg.Seed, shards, addr, dir)
	stats, err := pinscope.ServeShards(cfg, pinscope.ShardOptions{
		Shards: shards, Workers: workers, Dir: dir,
	}, addr)
	if stats != nil {
		fmt.Fprintf(os.Stderr, "pinstudy: %d worker conns / %d shards: %d leases expired, %d slices reassigned, %d results resumed, %d duplicates dropped, %d zombie frames fenced\n",
			stats.Workers, stats.Shards, stats.LeasesExpired, stats.Reassigned,
			stats.ResumedFrames, stats.Duplicates, stats.Fenced)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pinstudy: %v\n", err)
		fmt.Fprintf(os.Stderr, "pinstudy: shard journals survive in %s; rerun the same command to resume\n", dir)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "pinstudy: sharded serve complete in %s; merge with -shards %d -journal %s -merge\n",
		time.Since(start).Round(time.Millisecond), shards, dir)
}

// runShardWorker handles -shard-connect: the worker half of a
// cross-machine sharded run. The run's configuration ships over the wire,
// so the worker needs no flags beyond the coordinator's address.
func runShardWorker(addr, scope string) {
	if scope == "" {
		// The scope is the worker's operator-facing name in coordinator
		// logs and its backoff-jitter decorrelation label — it must differ
		// per machine and per process, which is exactly what host-ambient
		// identity provides. It never feeds study results: every exported
		// byte is a pure function of the run config the coordinator ships.
		host, err := os.Hostname() //pinlint:allow detrandonly worker identity label, never reaches study output
		if err != nil || host == "" {
			host = "worker"
		}
		scope = fmt.Sprintf("%s-%d", host, os.Getpid()) //pinlint:allow detrandonly worker identity label, never reaches study output
	}
	fmt.Fprintf(os.Stderr, "pinstudy: shard worker %s dialing %s...\n", scope, addr)
	if err := pinscope.ConnectShardWorker(addr, scope); err != nil {
		fmt.Fprintf(os.Stderr, "pinstudy: shard worker: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "pinstudy: shard worker done: coordinator reports the run complete")
}

// parseShardKills parses "slice@afterN[,slice@afterN...]".
func parseShardKills(s string) ([]pinscope.ShardKill, error) {
	if s == "" {
		return nil, nil
	}
	var out []pinscope.ShardKill
	for _, part := range strings.Split(s, ",") {
		var slice, after int
		if _, err := fmt.Sscanf(part, "%d@%d", &slice, &after); err != nil {
			return nil, fmt.Errorf("bad -shard-kill part %q (want slice@afterN)", part)
		}
		out = append(out, pinscope.ShardKill{Slice: slice, AfterResults: after})
	}
	return out, nil
}
