// Command pindiff demonstrates the dynamic half of the methodology on a
// single app: it runs the app on an emulated device with and without the
// MITM proxy, prints the per-destination connection classifications, and
// gives the differential pinning verdict.
//
// With -timeline it runs the longitudinal mode instead: the same mini
// universe is replayed across root-program releases and distrust events,
// and the Table-3-over-time, breakage and breakage-delta tables are
// printed (see internal/rootprogram).
//
// Usage:
//
//	pindiff [-seed N] [-platform android|ios] [-app com.example.id]
//	pindiff -timeline [-seed N] [-points tag,tag,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"pinscope/internal/appmodel"
	"pinscope/internal/core"
	"pinscope/internal/detrand"
	"pinscope/internal/device"
	"pinscope/internal/dynamicanalysis"
	"pinscope/internal/mitmproxy"
	"pinscope/internal/pki"
	"pinscope/internal/report"
	"pinscope/internal/worldgen"
)

func main() {
	seed := flag.Int64("seed", 7, "world seed")
	platform := flag.String("platform", "ios", "android or ios")
	appID := flag.String("app", "", "app id (default: first pinning app)")
	timeline := flag.Bool("timeline", false, "replay the universe across root-program releases and distrust events")
	points := flag.String("points", "froyo,gingerbread,kitkat,distrust-ca-distrust",
		"timeline points for -timeline (comma-separated tags; empty = all)")
	flag.Parse()

	if *timeline {
		runTimeline(*seed, *points)
		return
	}

	plat := appmodel.Android
	if *platform == "ios" {
		plat = appmodel.IOS
	}

	w, err := worldgen.Build(worldgen.TestParams(*seed))
	if err != nil {
		fmt.Fprintf(os.Stderr, "pindiff: %v\n", err)
		os.Exit(1)
	}
	var target *appmodel.App
	for _, ds := range w.DS.All() {
		for _, a := range w.Apps(ds) {
			if a.Platform != plat {
				continue
			}
			if *appID != "" && a.ID == *appID {
				target = a
			}
			if *appID == "" && target == nil && a.Truth.PinsAtRuntime {
				target = a
			}
		}
	}
	if target == nil {
		fmt.Fprintln(os.Stderr, "pindiff: no matching app")
		os.Exit(1)
	}

	stores := map[appmodel.Platform]*pki.RootStore{
		appmodel.Android: w.Eco.OEM,
		appmodel.IOS:     w.Eco.IOS,
	}
	mk := func(label string) *device.Device {
		return device.New(plat, w.NewNetwork(true), stores[plat],
			detrand.New(*seed).Child("pindiff/"+label))
	}
	dPlain := mk("dev")
	dMITM := mk("dev") // same label: identical device identity
	proxy, err := mitmproxy.NewWithCA(detrand.New(*seed).Child("proxy"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	dMITM.Net.SetInterceptor(proxy)
	dMITM.InstallCA(proxy.CACert())

	fmt.Printf("app: %s (%s, %s)\n\n", target.ID, target.Name, plat)
	fmt.Println("run 1: baseline (no interception), 30 s capture")
	capA := dPlain.Run(target, device.RunOptions{})
	fmt.Printf("  %d flows captured\n", len(capA.Flows()))

	fmt.Println("run 2: MITM (mitmproxy CA installed, all TLS intercepted)")
	capB := dMITM.Run(target, device.RunOptions{})
	fmt.Printf("  %d flows captured\n\n", len(capB.Flows()))

	opts := dynamicanalysis.Options{}
	if plat == appmodel.IOS {
		opts.ExcludeDomains = append(opts.ExcludeDomains, device.AppleBackgroundDomains...)
		opts.ExcludeDomains = append(opts.ExcludeDomains, target.AssociatedDomains...)
	}
	res := dynamicanalysis.Detect(target.ID, capA, capB, opts)

	fmt.Println("per-destination differential verdicts:")
	var dests []string
	for d := range res.Verdicts {
		dests = append(dests, d)
	}
	sort.Strings(dests)
	for _, d := range dests {
		v := res.Verdicts[d]
		status := "not pinned"
		switch {
		case v.Excluded:
			status = "excluded (OS traffic)"
		case v.Pinned:
			status = "PINNED"
		case !v.UsedNoMITM:
			status = "inconclusive (never used)"
		}
		fmt.Printf("  %-36s baseline-used=%-5v mitm-used=%-5v  %s\n",
			d, v.UsedNoMITM, v.UsedMITM, status)
	}

	fmt.Printf("\nverdict: app pins = %v; pinned destinations: %v\n", res.Pins(), res.PinnedDests())
	fmt.Printf("ground truth (generator): %v\n", target.Truth.PinnedHosts)
}

// runTimeline is the -timeline mode: a longitudinal sweep over the mini
// universe with the full time-axis report.
func runTimeline(seed int64, points string) {
	var tags []string
	for _, t := range strings.Split(points, ",") {
		if t = strings.TrimSpace(t); t != "" {
			tags = append(tags, t)
		}
	}
	cfg := core.Config{Params: worldgen.TestParams(seed), Window: 30}
	ls, err := core.RunLongitudinal(cfg, core.TimelineConfig{Points: tags})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pindiff: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("longitudinal sweep: seed %d, %d timeline points\n\n", seed, len(ls.Points))
	fmt.Println(report.Longitudinal(ls))
}
