// Command pinscan demonstrates the static half of the methodology on a
// single app: it picks an app from a generated world (or the first pinning
// app), decrypts it if needed, and prints everything the static pipeline
// finds — certificate files, pin hashes and their code paths, NSC pin-sets,
// third-party attribution and CT-log pin resolution.
//
// Usage:
//
//	pinscan [-seed N] [-platform android|ios] [-app com.example.id]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"pinscope/internal/appmodel"
	"pinscope/internal/detrand"
	"pinscope/internal/device"
	"pinscope/internal/sdkregistry"
	"pinscope/internal/staticanalysis"
	"pinscope/internal/worldgen"
)

func main() {
	seed := flag.Int64("seed", 7, "world seed")
	platform := flag.String("platform", "android", "android or ios")
	appID := flag.String("app", "", "app id to scan (default: first pinning app)")
	flag.Parse()

	plat := appmodel.Android
	if *platform == "ios" {
		plat = appmodel.IOS
	}

	w, err := worldgen.Build(worldgen.TestParams(*seed))
	if err != nil {
		fmt.Fprintf(os.Stderr, "pinscan: %v\n", err)
		os.Exit(1)
	}

	var target *appmodel.App
	for _, ds := range w.DS.All() {
		for _, a := range w.Apps(ds) {
			if a.Platform != plat {
				continue
			}
			if *appID != "" && a.ID == *appID {
				target = a
			}
			if *appID == "" && target == nil && a.Truth.PinsAtRuntime && !a.Truth.Obfuscated {
				target = a
			}
		}
	}
	if target == nil {
		fmt.Fprintf(os.Stderr, "pinscan: no matching app found\n")
		os.Exit(1)
	}

	fmt.Printf("app:       %s (%q by %s)\n", target.ID, target.Name, target.Developer)
	fmt.Printf("platform:  %s   category: %s\n", target.Platform, target.Category)
	fmt.Printf("package:   %d files, encrypted=%v\n\n", target.Pkg.Len(), target.Pkg.Encrypted)

	if target.Pkg.Encrypted {
		dev := device.New(plat, w.NewNetwork(true), w.Eco.IOS, detrand.New(*seed).Child("scan-device"))
		if err := dev.DecryptApp(target); err != nil {
			fmt.Fprintf(os.Stderr, "pinscan: decrypt: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("decrypted payload via jailbroken device (Flexdecrypt step)")
	}

	rep, err := staticanalysis.Analyze(target)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pinscan: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("\nembedded certificates: %d\n", len(rep.Certs))
	for _, c := range rep.Certs {
		owner := "first-party/unknown"
		if sdk, ok := sdkregistry.AttributePath(plat, c.Path); ok {
			owner = "SDK: " + sdk.Name
		}
		fmt.Printf("  %-52s CN=%q CA=%v (%s)\n", c.Path, c.Cert.Subject.CommonName, c.Cert.IsCA, owner)
	}

	fmt.Printf("\npin hashes: %d\n", len(rep.Pins))
	for _, p := range rep.Pins {
		fmt.Printf("  %-52s %s\n", p.Path, p.Raw)
	}

	if rep.NSC != nil {
		fmt.Printf("\nnetwork security config: %d domain blocks, pin-set=%v\n",
			len(rep.NSC.Domains), rep.NSCHasPins)
		for _, m := range rep.Misconfigs {
			fmt.Printf("  MISCONFIGURATION: %s\n", m)
		}
	}

	resolved, frac := staticanalysis.ResolvePins(rep, w.CT)
	fmt.Printf("\nCT-log pin resolution: %.0f%% of unique pins resolved\n", frac*100)
	keys := make([]string, 0, len(resolved))
	for key := range resolved {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		for _, c := range resolved[key] {
			fmt.Printf("  %s -> CN=%q\n", key[:24]+"...", c.Subject.CommonName)
		}
	}

	fmt.Printf("\nverdict: potential pinning (cert material present) = %v\n", rep.HasCertMaterial())
	fmt.Printf("ground truth (generator): pins at runtime = %v\n", target.Truth.PinsAtRuntime)
}
