// Command pinlint runs pinscope's custom static-analysis suite — the
// determinism, export-shape, concurrency and durability invariants the
// simulation and serving layers depend on — over the packages matching
// its arguments.
//
//	pinlint ./...                      # whole tree (what scripts/check.sh runs)
//	pinlint -list                      # describe the analyzers
//	pinlint -only detrandonly ./internal/core
//	pinlint -json ./...                # machine-readable findings
//	pinlint -baseline lint_baseline.json ./...        # fail only on NEW findings
//	pinlint -write-baseline lint_baseline.json ./...  # accept current findings
//
// Findings print as file:line:col and the exit status is 1 when any
// remain after //pinlint:allow suppression. In -baseline mode the exit
// status reflects only findings not present in the baseline file, so CI
// stays green across legacy findings while new ones still break; the
// baseline keys on analyzer+file+message (not line numbers), so findings
// do not churn when unrelated edits move code. See DESIGN.md "Static
// analysis engine".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pinscope/internal/atomicio"
	"pinscope/internal/lint"
)

// jsonDiag is the machine-readable rendering of one finding.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// baselineEntry is one accepted finding. Line numbers are deliberately
// absent: the identity is analyzer+file+message, with a count so N
// identical findings in one file stay distinguishable from N+1.
type baselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// baselineFile is the checked-in accepted-findings snapshot.
type baselineFile struct {
	Version  int             `json:"version"`
	Findings []baselineEntry `json:"findings"`
}

func main() {
	listFlag := flag.Bool("list", false, "list analyzers and exit")
	onlyFlag := flag.String("only", "", "comma-separated analyzer names to run (default all)")
	jsonFlag := flag.Bool("json", false, "print findings as JSON")
	baselineFlag := flag.String("baseline", "", "baseline file: fail only on findings not present in it")
	writeBaselineFlag := flag.String("write-baseline", "", "write current findings to this baseline file and exit 0")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pinlint [-list] [-only a,b] [-json] [-baseline file | -write-baseline file] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := lint.Suite(lint.DefaultConfig())
	if *listFlag {
		for _, a := range suite {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *baselineFlag != "" && *writeBaselineFlag != "" {
		fmt.Fprintln(os.Stderr, "pinlint: -baseline and -write-baseline are mutually exclusive")
		os.Exit(2)
	}

	analyzers := suite
	if *onlyFlag != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*onlyFlag, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "pinlint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pinlint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(wd, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pinlint:", err)
		os.Exit(2)
	}

	if *writeBaselineFlag != "" {
		if err := writeBaseline(*writeBaselineFlag, wd, diags); err != nil {
			fmt.Fprintln(os.Stderr, "pinlint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "pinlint: wrote %d finding(s) to %s\n", len(diags), *writeBaselineFlag)
		return
	}
	if *baselineFlag != "" {
		var stale int
		diags, stale, err = subtractBaseline(*baselineFlag, wd, diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pinlint:", err)
			os.Exit(2)
		}
		if stale > 0 {
			fmt.Fprintf(os.Stderr, "pinlint: %d baselined finding(s) no longer occur; regenerate with make lint-baseline\n", stale)
		}
	}

	if *jsonFlag {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				Analyzer: d.Analyzer,
				File:     relTo(wd, d.Position.Filename),
				Line:     d.Position.Line,
				Col:      d.Position.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "pinlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		what := "finding(s)"
		if *baselineFlag != "" {
			what = "new finding(s) not in baseline"
		}
		fmt.Fprintf(os.Stderr, "pinlint: %d %s\n", len(diags), what)
		os.Exit(1)
	}
}

// relTo renders path relative to base when possible, so baselines and
// JSON output are stable across checkouts.
func relTo(base, path string) string {
	if rel, err := filepath.Rel(base, path); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(path)
}

// baselineKey is the line-insensitive identity of a finding.
func baselineKey(analyzer, file, message string) string {
	return analyzer + "\x00" + file + "\x00" + message
}

// writeBaseline snapshots diags as the accepted-findings multiset. The
// write goes through atomicio so an interrupted run cannot leave a torn
// baseline behind.
func writeBaseline(path, wd string, diags []lint.Diagnostic) error {
	counts := map[string]*baselineEntry{}
	var order []string
	for _, d := range diags {
		key := baselineKey(d.Analyzer, relTo(wd, d.Position.Filename), d.Message)
		if e, ok := counts[key]; ok {
			e.Count++
			continue
		}
		counts[key] = &baselineEntry{
			Analyzer: d.Analyzer,
			File:     relTo(wd, d.Position.Filename),
			Message:  d.Message,
			Count:    1,
		}
		order = append(order, key) // diags arrive position-sorted: order is stable
	}
	bf := baselineFile{Version: 1, Findings: []baselineEntry{}}
	for _, key := range order {
		bf.Findings = append(bf.Findings, *counts[key])
	}
	data, err := json.MarshalIndent(&bf, "", "  ")
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, append(data, '\n'))
}

// subtractBaseline removes baselined findings from diags, returning the
// new findings and the count of baselined entries that no longer occur.
func subtractBaseline(path, wd string, diags []lint.Diagnostic) ([]lint.Diagnostic, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, 0, fmt.Errorf("parsing baseline %s: %v", path, err)
	}
	if bf.Version != 1 {
		return nil, 0, fmt.Errorf("baseline %s has unsupported version %d", path, bf.Version)
	}
	budget := map[string]int{}
	for _, e := range bf.Findings {
		budget[baselineKey(e.Analyzer, e.File, e.Message)] += e.Count
	}
	var fresh []lint.Diagnostic
	for _, d := range diags {
		key := baselineKey(d.Analyzer, relTo(wd, d.Position.Filename), d.Message)
		if budget[key] > 0 {
			budget[key]--
			continue
		}
		fresh = append(fresh, d)
	}
	stale := 0
	for _, n := range budget {
		stale += n
	}
	return fresh, stale, nil
}
