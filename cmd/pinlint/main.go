// Command pinlint runs pinscope's custom static-analysis suite — the
// determinism, export-shape and concurrency invariants the simulation and
// serving layers depend on — over the packages matching its arguments.
//
//	pinlint ./...            # whole tree (what scripts/check.sh runs)
//	pinlint -list            # describe the analyzers
//	pinlint -only detrandonly,exportshape ./internal/core
//
// Findings print as file:line:col and the exit status is 1 when any
// remain after //pinlint:allow suppression. See DESIGN.md "Invariants".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pinscope/internal/lint"
)

func main() {
	listFlag := flag.Bool("list", false, "list analyzers and exit")
	onlyFlag := flag.String("only", "", "comma-separated analyzer names to run (default all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pinlint [-list] [-only a,b] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := lint.Suite(lint.DefaultConfig())
	if *listFlag {
		for _, a := range suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := suite
	if *onlyFlag != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*onlyFlag, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "pinlint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pinlint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(wd, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pinlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pinlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
