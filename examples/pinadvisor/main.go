// Pinadvisor: turn the study's measurements into developer guidance — the
// "better set of guidelines" the paper's discussion calls for (§5.7). The
// example runs a mini study, then prints per-destination pinning advice for
// a cross-platform product with inconsistent pinning and for a finance app.
//
//	go run ./examples/pinadvisor
package main

import (
	"fmt"
	"log"
	"strings"

	"pinscope"
)

func main() {
	study, err := pinscope.Run(pinscope.MiniConfig(11))
	if err != nil {
		log.Fatal(err)
	}

	printAdvice := func(label string, plat pinscope.Platform, appID string) {
		advice, err := study.AdviseApp(plat, appID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s — %s (%s)\n%s\n", label, appID, plat, strings.Repeat("-", 66))
		for _, a := range advice {
			verdict := "do not pin"
			if a.Pin {
				verdict = "PIN (" + a.Strategy + " via " + a.Mechanism + ")"
			}
			fmt.Printf("  %-34s %s\n", a.Host, verdict)
			for _, r := range a.Rationale {
				fmt.Printf("      why: %s\n", r)
			}
			for _, w := range a.Warnings {
				fmt.Printf("      WARNING: %s\n", w)
			}
		}
		fmt.Println()
	}

	// Pick a finance app that pins, and any pinning app with warnings.
	var financeApp, warnedApp *pinscope.Verdict
	for i, v := range study.Verdicts() {
		vv := study.Verdicts()[i]
		if financeApp == nil && v.Category == "Finance" && v.Pinned {
			financeApp = &vv
		}
		if warnedApp == nil && v.Pinned && v.Category != "Finance" {
			warnedApp = &vv
		}
	}
	if financeApp != nil {
		printAdvice("finance app", financeApp.Platform, financeApp.AppID)
	}
	if warnedApp != nil {
		printAdvice("pinning app", warnedApp.Platform, warnedApp.AppID)
	}
	if financeApp == nil && warnedApp == nil {
		fmt.Println("no pinning apps in this seed; try another")
	}
}
