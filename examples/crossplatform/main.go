// Crossplatform: RQ3 — do developers pin consistently across the Android
// and iOS builds of the same product? The example reproduces the §5.1
// analysis on the Common dataset: the Figure 2 split, the Figure 3
// inconsistency heatmap, and Figure 4's exclusive pinners.
//
//	go run ./examples/crossplatform
package main

import (
	"fmt"
	"log"

	"pinscope"
)

func main() {
	study, err := pinscope.Run(pinscope.MiniConfig(11))
	if err != nil {
		log.Fatal(err)
	}

	for _, sec := range []pinscope.Section{
		pinscope.SecFigure2, pinscope.SecFigure3, pinscope.SecFigure4,
	} {
		out, err := study.Report(sec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}

	fmt.Println("Takeaway: the same product, owned by the same developer, is")
	fmt.Println("frequently pinned on one platform and left unpinned on the other —")
	fmt.Println("pinning policies do not transfer across codebases (§5.7).")
}
