// Financeaudit: the workload the paper's introduction motivates — auditing
// the security posture of finance apps, the category that pins the most on
// both platforms. The example runs a study, isolates finance-category apps,
// and reports their pinning adoption, weak-cipher hygiene and which pinned
// destinations resist instrumentation (i.e., whose traffic an auditor
// cannot inspect).
//
//	go run ./examples/financeaudit
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"pinscope"
)

func main() {
	study, err := pinscope.Run(pinscope.MiniConfig(7))
	if err != nil {
		log.Fatal(err)
	}

	type bucket struct {
		apps, pinning, protectedOnly int
	}
	perPlatform := map[pinscope.Platform]*bucket{
		pinscope.Android: {}, pinscope.IOS: {},
	}

	fmt.Println("finance-category audit")
	fmt.Println(strings.Repeat("-", 64))
	for _, v := range study.Verdicts() {
		if v.Category != "Finance" {
			continue
		}
		b := perPlatform[v.Platform]
		b.apps++
		if !v.Pinned {
			continue
		}
		b.pinning++

		// Destinations whose pinned traffic the hooks could NOT open: the
		// contents stay opaque even to an auditor with a jailbroken device.
		opaque := make(map[string]bool)
		for _, d := range v.PinnedDomains {
			opaque[d] = true
		}
		for _, d := range v.CircumventedDomains {
			delete(opaque, d)
		}
		if len(opaque) > 0 {
			b.protectedOnly++
		}

		fmt.Printf("%-34s %s\n", v.AppID, v.Platform)
		fmt.Printf("    pins %d destination(s): %v\n", len(v.PinnedDomains), v.PinnedDomains)
		if len(v.CircumventedDomains) > 0 {
			fmt.Printf("    inspectable after hooking: %v\n", v.CircumventedDomains)
		}
		if len(opaque) > 0 {
			var list []string
			for d := range opaque {
				list = append(list, d)
			}
			sort.Strings(list)
			fmt.Printf("    RESISTS instrumentation:   %v\n", list)
		}
	}

	fmt.Println(strings.Repeat("-", 64))
	for _, plat := range []pinscope.Platform{pinscope.Android, pinscope.IOS} {
		b := perPlatform[plat]
		if b.apps == 0 {
			continue
		}
		fmt.Printf("%-8s: %d finance apps, %d pin (%.1f%%), %d have uninspectable pinned traffic\n",
			plat, b.apps, b.pinning, 100*float64(b.pinning)/float64(b.apps), b.protectedOnly)
	}

	// The category tables for context.
	fmt.Println()
	for _, sec := range []pinscope.Section{pinscope.SecTable4, pinscope.SecTable5} {
		out, err := study.Report(sec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}
}
