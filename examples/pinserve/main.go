// Pinserve quickstart: run a miniature study, export its snapshot, serve
// it with the pinscoped serving layer, and ask the questions the service
// exists to answer — who is this app, who ships this pin hash, who pins
// this destination, and what do the aggregate tables say.
//
//	go run ./examples/pinserve
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"pinscope"
	"pinscope/internal/atomicio"
	"pinscope/internal/core"
	"pinscope/internal/pinserve"
)

func main() {
	// 1. A mini study (~500 apps, a few seconds), exported the same way
	//    `pinstudy -export` writes release snapshots.
	study, err := pinscope.Run(pinscope.MiniConfig(42))
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(os.TempDir(), "pinserve-quickstart.json")
	w, err := atomicio.Create(path, atomicio.WithChecksum())
	if err != nil {
		log.Fatal(err)
	}
	if err := study.ExportDataset(w); err != nil {
		log.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)
	defer os.Remove(path + ".crc")

	// 2. Serve the snapshot. This is what `pinscoped -data <file>` does;
	//    here we bind an ephemeral port and query ourselves.
	srv, err := pinserve.New(pinserve.Options{Paths: []string{path}})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv.Handler()) //nolint:errcheck // dies with the example
	base := "http://" + ln.Addr().String()
	st := srv.Index().Stats()
	fmt.Printf("serving %d apps, %d destinations, %d unique pins at %s\n\n",
		st.Apps, st.Destinations, st.UniquePins, base)

	// 3. Find a pinning app in the snapshot to drive the lookups with.
	ds, err := core.LoadExportedDataset(path)
	if err != nil {
		log.Fatal(err)
	}
	var pinner *core.ExportedApp
	for i := range ds.Apps {
		if len(ds.Apps[i].PinnedDomains) > 0 && len(ds.Apps[i].PinSPKIHashes) > 0 {
			pinner = &ds.Apps[i]
			break
		}
	}
	if pinner == nil {
		log.Fatal("no pinning app in snapshot")
	}

	// 4. The four query surfaces.
	show(base + "/v1/app/" + pinner.Platform + "/" + pinner.ID)
	show(base + "/v1/pins?spki=" + pinner.PinSPKIHashes[0])
	show(base + "/v1/dest/" + pinner.PinnedDomains[0])
	show(base + "/v1/tables/1?format=text")
}

// show GETs a URL and prints the first part of the response.
func show(url string) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	const keep = 600
	fmt.Printf("GET %s -> %s\n", url, resp.Status)
	if len(body) > keep {
		body = append(body[:keep], []byte("...")...)
	}
	fmt.Printf("%s\n\n", body)
}
