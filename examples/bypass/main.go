// Bypass: RQ5 — what hides behind pinned connections? The example works at
// the substrate level: it builds a world, finds a pinning app, shows that
// the MITM proxy sees nothing on its pinned destination, then attaches the
// instrumentation hooks (Frida step, §4.3), re-runs the app, and scans the
// now-visible plaintext for PII (§4.4).
//
//	go run ./examples/bypass
package main

import (
	"fmt"
	"log"
	"sort"

	"pinscope/internal/appmodel"
	"pinscope/internal/detrand"
	"pinscope/internal/device"
	"pinscope/internal/frida"
	"pinscope/internal/mitmproxy"
	"pinscope/internal/pii"
	"pinscope/internal/pki"
	"pinscope/internal/worldgen"
)

func main() {
	const seed = 23
	w, err := worldgen.Build(worldgen.TestParams(seed))
	if err != nil {
		log.Fatal(err)
	}

	// Find an iOS app that pins a destination through a hookable stack.
	var target *appmodel.App
	for _, ds := range w.DS.All() {
		for _, a := range w.Apps(ds) {
			if a.Platform != appmodel.IOS || !a.Truth.PinsAtRuntime {
				continue
			}
			for _, c := range a.Conns {
				if !c.Pins.Empty() && c.Lib == appmodel.LibNSURLSession {
					target = a
				}
			}
		}
		if target != nil {
			break
		}
	}
	if target == nil {
		log.Fatal("no suitable app in this seed")
	}
	fmt.Printf("target app: %s (%s)\npinned destinations (ground truth): %v\n\n",
		target.ID, target.Name, target.Truth.PinnedHosts)

	// MITM setup: proxy on the network, CA installed on the device.
	net := w.NewNetwork(true)
	proxy, err := mitmproxy.NewWithCA(detrand.New(seed).Child("proxy"))
	if err != nil {
		log.Fatal(err)
	}
	net.SetInterceptor(proxy)
	stores := map[appmodel.Platform]*pki.RootStore{appmodel.IOS: w.Eco.IOS}
	dev := device.New(appmodel.IOS, net, stores[appmodel.IOS], detrand.New(seed).Child("dev"))
	dev.InstallCA(proxy.CACert())

	pinnedSet := target.PinnedHostSet()
	countPinnedPayloads := func() int {
		n := 0
		for _, lg := range proxy.Logs() {
			if pinnedSet[lg.Dest()] {
				n += len(lg.Payloads)
			}
		}
		return n
	}

	// Run 1: MITM without hooks — pinned traffic stays opaque.
	dev.Run(target, device.RunOptions{})
	fmt.Printf("run 1 (MITM only):    %d plaintext payloads from pinned destinations\n",
		countPinnedPayloads())

	// Run 2: attach instrumentation, disable certificate validation in the
	// app's TLS stacks, re-run.
	hooks, err := frida.Attach(appmodel.IOS, dev.Jailbroken)
	if err != nil {
		log.Fatal(err)
	}
	proxy.ResetLogs()
	dev.Run(target, device.RunOptions{Hooks: hooks})
	fmt.Printf("run 2 (MITM + hooks): %d plaintext payloads from pinned destinations\n\n",
		countPinnedPayloads())

	// Scan what pinning was protecting.
	scanner := pii.NewScanner(dev.Profile)
	for _, lg := range proxy.Logs() {
		if !pinnedSet[lg.Dest()] || len(lg.Payloads) == 0 {
			continue
		}
		found := scanner.ScanAll(lg.Payloads)
		fmt.Printf("pinned destination %s:\n", lg.Dest())
		fmt.Printf("  first payload: %.96q...\n", lg.Payloads[0])
		if len(found) == 0 {
			fmt.Println("  PII detected: none")
			continue
		}
		kinds := make([]string, 0, len(found))
		for k := range found {
			kinds = append(kinds, string(k))
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Printf("  PII detected: %s\n", k)
		}
	}
}
