// Quickstart: run a miniature end-to-end study and inspect the headline
// result — how prevalent certificate pinning is on each platform, by
// detection method — plus a couple of per-app verdicts.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pinscope"
)

func main() {
	// A mini study: ~500 apps across six datasets, a few seconds.
	study, err := pinscope.Run(pinscope.MiniConfig(42))
	if err != nil {
		log.Fatal(err)
	}

	// Headline numbers: dynamic pinning prevalence per dataset.
	for _, dataset := range []string{"Common", "Popular", "Random"} {
		a, _ := study.PinningRate(dataset, pinscope.Android)
		i, _ := study.PinningRate(dataset, pinscope.IOS)
		fmt.Printf("%-8s dataset: %5.2f%% of Android apps and %5.2f%% of iOS apps pin\n",
			dataset, a, i)
	}

	// The full Table 3 rendering, as in the paper.
	fmt.Println()
	out, err := study.Report(pinscope.SecTable3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)

	// Per-app verdicts: show the first few pinning apps with what each
	// analysis technique saw.
	fmt.Println("sample pinning apps:")
	shown := 0
	for _, v := range study.Verdicts() {
		if !v.Pinned || shown == 5 {
			continue
		}
		shown++
		fmt.Printf("  %-34s (%s, %s)\n", v.AppID, v.Platform, v.Category)
		fmt.Printf("      pinned domains:     %v\n", v.PinnedDomains)
		fmt.Printf("      static material:    %v   NSC pin-set: %v\n",
			v.EmbeddedCertMaterial, v.NSCPinning)
		if len(v.CircumventedDomains) > 0 {
			fmt.Printf("      hooks circumvented: %v\n", v.CircumventedDomains)
		}
	}
}
