// Package pinscope reproduces the measurement study "A Comparative
// Analysis of Certificate Pinning in Android & iOS" (Pradeep et al.,
// ACM IMC 2022) end to end on a deterministic, fully simulated mobile
// ecosystem: app stores, app packages, devices, a TLS wire emulation, a
// MITM interception proxy, and instrumentation hooks.
//
// The package is the public face of the library. A Study runs the
// complete pipeline — dataset crawling, static analysis of app packages,
// differential dynamic analysis with and without interception, pinning
// circumvention and PII inspection — and exposes every table and figure of
// the paper's evaluation both as typed data and as rendered text.
//
// Quick use:
//
//	study, err := pinscope.Run(pinscope.MiniConfig(42))
//	...
//	fmt.Println(study.Report(pinscope.SecTable3))
//
// Everything is reproducible: the same Config yields identical results.
package pinscope

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"pinscope/internal/appmodel"
	"pinscope/internal/core"
	"pinscope/internal/faultinject"
	"pinscope/internal/journal"
	"pinscope/internal/report"
	"pinscope/internal/worldgen"
)

// Config sizes and seeds a study.
type Config struct {
	// Seed determines the entire world; equal seeds give equal results.
	Seed int64
	// CommonSize, PopularSize, RandomSize are per-platform dataset sizes.
	// Zero values default to the paper's 575/1,000/1,000.
	CommonSize, PopularSize, RandomSize int
	// StoreAndroid/StoreIOS size the store populations (zero → defaults).
	StoreAndroid, StoreIOS int
	// Window is the dynamic capture window in seconds (zero → 30).
	Window float64
	// Workers caps parallelism (zero → GOMAXPROCS).
	Workers int
	// FaultRate, when positive, injects deterministic operational faults
	// (connection resets, capture drops/truncation, app crashes, decryption
	// and proxy-forge failures) into every pipeline layer at this uniform
	// per-class probability. Zero keeps the study byte-identical to a
	// fault-free build.
	FaultRate float64
	// Retries bounds extra per-app measurement attempts under faults
	// (zero → 2 when FaultRate > 0; ignored otherwise).
	Retries int
	// JournalPath, when set, streams every completed per-app result into an
	// append-only, checksummed write-ahead journal at this path, making the
	// run crash-only: kill the process at any instant and the journaled
	// results survive.
	JournalPath string
	// Resume replays the results already in JournalPath (from a previous,
	// killed run with an identical configuration) instead of re-measuring
	// those apps. The finished study's export is byte-identical to an
	// uninterrupted run's.
	Resume bool
	// KillAfter, when positive, simulates a power cut for crash-recovery
	// testing: the run aborts after KillAfter results reach the journal,
	// leaving KillTorn bytes of the interrupted frame on disk. Requires
	// JournalPath.
	KillAfter int
	// KillTorn is the torn-frame length for KillAfter (0: the cut lands
	// cleanly between frames).
	KillTorn int
	// ColdCrypto disables the shared crypto plane (interned forged chains,
	// handshake memoization, shared trust stores), forcing every worker to
	// rebuild and re-verify everything from scratch. The export is
	// byte-identical either way; this exists for equivalence testing and
	// for profiling the uncached pipeline.
	ColdCrypto bool
}

// PaperConfig reproduces the paper-scale study (≈5,000 unique apps).
func PaperConfig() Config {
	p := worldgen.DefaultParams()
	return Config{
		Seed:       p.Seed,
		CommonSize: p.CommonSize, PopularSize: p.PopularSize, RandomSize: p.RandomSize,
		StoreAndroid: p.StoreAndroid, StoreIOS: p.StoreIOS,
		Window: 30,
	}
}

// Config100k sizes a ≈100,000-unique-app universe — the scale the sharded
// coordinator exists for (ROADMAP's step toward the paper's 1.35M-app
// store universe). Dataset proportions follow the paper (≈22× its sizes);
// the store populations grow 10× so the popular cut keeps its meaning.
// Budget tens of minutes per full pass on one core; shard it.
func Config100k(seed int64) Config {
	return Config{
		Seed:       seed,
		CommonSize: 5000, PopularSize: 22500, RandomSize: 22500,
		StoreAndroid: 420000, StoreIOS: 390000,
		Window: 30,
	}
}

// MiniConfig is a laptop-instant miniature study, useful for examples and
// tests.
func MiniConfig(seed int64) Config {
	p := worldgen.TestParams(seed)
	return Config{
		Seed:       seed,
		CommonSize: p.CommonSize, PopularSize: p.PopularSize, RandomSize: p.RandomSize,
		StoreAndroid: p.StoreAndroid, StoreIOS: p.StoreIOS,
		Window: 30,
	}
}

func (c Config) toCore() core.Config {
	def := worldgen.DefaultParams()
	p := worldgen.Params{
		Seed:       c.Seed,
		CommonSize: c.CommonSize, PopularSize: c.PopularSize, RandomSize: c.RandomSize,
		StoreAndroid: c.StoreAndroid, StoreIOS: c.StoreIOS,
		PopularCut: def.PopularCut,
	}
	if p.Seed == 0 {
		p.Seed = def.Seed
	}
	if p.CommonSize == 0 {
		p.CommonSize = def.CommonSize
	}
	if p.PopularSize == 0 {
		p.PopularSize = def.PopularSize
	}
	if p.RandomSize == 0 {
		p.RandomSize = def.RandomSize
	}
	if p.StoreAndroid == 0 {
		p.StoreAndroid = def.StoreAndroid
	}
	if p.StoreIOS == 0 {
		p.StoreIOS = def.StoreIOS
	}
	// Keep the popular-mix head proportional on resized stores (shrunk
	// mini worlds and the grown 100k-app universe alike).
	if p.StoreAndroid != def.StoreAndroid {
		p.PopularCut = p.StoreAndroid * def.PopularCut / def.StoreAndroid
	}
	p.CrossProducts = p.CommonSize + p.CommonSize/4
	win := c.Window
	if win == 0 {
		win = 30
	}
	cc := core.Config{Params: p, Window: win, Workers: c.Workers, ColdCrypto: c.ColdCrypto}
	if c.FaultRate > 0 {
		cc.Faults = faultinject.NewPlan(p.Seed, faultinject.Uniform(c.FaultRate))
		cc.Retries = c.Retries
		if cc.Retries == 0 {
			cc.Retries = 2
		}
	}
	if c.KillAfter > 0 {
		cc.Kill = &faultinject.ProcessKill{AfterResults: c.KillAfter, TornBytes: c.KillTorn}
	}
	return cc
}

// Platform identifies a mobile OS in the public API.
type Platform string

const (
	Android Platform = Platform(appmodel.Android)
	IOS     Platform = Platform(appmodel.IOS)
)

// Study is a completed reproduction run.
type Study struct {
	s *core.Study
}

// Run executes the full study for the configuration. With JournalPath set
// the run is crash-only: results stream into the journal as they complete,
// and Resume replays a killed run's journal instead of starting over.
func Run(cfg Config) (*Study, error) {
	var (
		s   *core.Study
		err error
	)
	if cfg.JournalPath != "" {
		s, err = core.RunJournaled(cfg.toCore(), cfg.JournalPath, cfg.Resume)
	} else {
		s, err = core.Run(cfg.toCore())
	}
	if err != nil {
		return nil, err
	}
	return &Study{s: s}, nil
}

// Resumed reports how many of the study's results were replayed from the
// journal rather than measured by this process (0 for fresh runs).
func (st *Study) Resumed() int { return st.s.Resumed }

// IsKilled reports whether err is an injected process kill (KillAfter): the
// run died by design, its journal is intact, and a Resume run continues it.
func IsKilled(err error) bool { return errors.Is(err, journal.ErrKilled) }

// Section names the renderable experiment sections.
type Section string

const (
	SecTable1        Section = "table1"
	SecTable2        Section = "table2"
	SecTable3        Section = "table3"
	SecTable4        Section = "table4"
	SecTable5        Section = "table5"
	SecFigure2       Section = "figure2"
	SecFigure3       Section = "figure3"
	SecFigure4       Section = "figure4"
	SecFigure5       Section = "figure5"
	SecTable6        Section = "table6"
	SecCertAnalysis  Section = "certs"
	SecTable7        Section = "table7"
	SecTable8        Section = "table8"
	SecTable9        Section = "table9"
	SecCircumvention Section = "circumvention"
	SecMisconfigs    Section = "misconfigs"
	SecInteraction   Section = "interaction"
	SecRobustness    Section = "robustness"
)

// Sections lists all renderable sections in paper order.
func Sections() []Section {
	return []Section{
		SecTable1, SecTable2, SecTable3, SecTable4, SecTable5,
		SecFigure2, SecFigure3, SecFigure4, SecFigure5,
		SecTable6, SecCertAnalysis, SecTable7, SecTable8, SecTable9,
		SecCircumvention, SecMisconfigs, SecInteraction, SecRobustness,
	}
}

// Report renders one section as text.
func (st *Study) Report(sec Section) (string, error) {
	s := st.s
	switch sec {
	case SecTable1:
		return report.Table1(s), nil
	case SecTable2:
		return report.Table2(s), nil
	case SecTable3:
		return report.Table3(s), nil
	case SecTable4:
		return report.TableCategories(s, appmodel.Android, minApps(s)), nil
	case SecTable5:
		return report.TableCategories(s, appmodel.IOS, minApps(s)), nil
	case SecFigure2:
		return report.Figure2(s), nil
	case SecFigure3:
		return report.Figure3(s), nil
	case SecFigure4:
		return report.Figure4(s), nil
	case SecFigure5:
		return report.Figure5(s), nil
	case SecTable6:
		return report.Table6(s), nil
	case SecCertAnalysis:
		return report.CertAnalysis(s), nil
	case SecTable7:
		return report.Table7(s, table7Min(s)), nil
	case SecTable8:
		return report.Table8(s), nil
	case SecTable9:
		return report.Table9(s), nil
	case SecCircumvention:
		return report.Circumvention(s), nil
	case SecMisconfigs:
		return report.Misconfigs(s), nil
	case SecInteraction:
		return report.Interaction(s, interactionSample(s)), nil
	case SecRobustness:
		return report.Robustness(s), nil
	}
	return "", fmt.Errorf("pinscope: unknown section %q", sec)
}

// FullReport renders every section.
func (st *Study) FullReport() string {
	return report.Full(st.s)
}

func minApps(s *core.Study) int { return len(s.World.DS.PopularAndroid.Listings)/100 + 1 }

func interactionSample(s *core.Study) int {
	n := len(s.World.DS.PopularAndroid.Listings)
	if n > 400 {
		return 400
	}
	return n
}
func table7Min(s *core.Study) int {
	m := len(s.World.DS.PopularAndroid.Listings) * 5 / 1000
	if m < 2 {
		m = 2
	}
	return m
}

// Verdict is the public per-app result.
type Verdict struct {
	AppID     string
	Name      string
	Developer string
	Platform  Platform
	Category  string

	// Pinned reports run-time pinning detected by the differential
	// dynamic analysis.
	Pinned bool
	// PinnedDomains are the destinations detected as pinned.
	PinnedDomains []string
	// EmbeddedCertMaterial reports static detection (certs or pin hashes
	// in the package).
	EmbeddedCertMaterial bool
	// NSCPinning reports an Android Network Security Configuration
	// pin-set.
	NSCPinning bool
	// CircumventedDomains are pinned destinations whose plaintext the
	// instrumentation hooks exposed.
	CircumventedDomains []string
}

// Verdicts returns every studied app's verdict, sorted by platform then ID.
func (st *Study) Verdicts() []Verdict {
	var out []Verdict
	seen := map[string]bool{}
	for _, ds := range st.s.World.DS.All() {
		for _, r := range st.s.DatasetResults(ds) {
			key := string(r.App.Platform) + "/" + r.App.ID
			if seen[key] {
				continue
			}
			seen[key] = true
			v := Verdict{
				AppID:     r.App.ID,
				Name:      r.App.Name,
				Developer: r.App.Developer,
				Platform:  Platform(r.App.Platform),
				Category:  r.App.Category,
				Pinned:    r.Pinned(),
			}
			if r.Dyn != nil {
				v.PinnedDomains = r.Dyn.PinnedDests()
			}
			if r.Static != nil {
				v.EmbeddedCertMaterial = r.Static.HasCertMaterial()
				v.NSCPinning = r.Static.NSCHasPins
			}
			for d, ok := range r.CircumventedDests {
				if ok {
					v.CircumventedDomains = append(v.CircumventedDomains, d)
				}
			}
			sort.Strings(v.CircumventedDomains)
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Platform != out[j].Platform {
			return out[i].Platform < out[j].Platform
		}
		return out[i].AppID < out[j].AppID
	})
	return out
}

// PinningRate returns the dynamic pinning rate (percent) for a dataset
// ("Common", "Popular", "Random") on a platform.
func (st *Study) PinningRate(dataset string, platform Platform) (float64, error) {
	for _, c := range st.s.Table3() {
		if c.Cell.Dataset == dataset && Platform(c.Cell.Platform) == platform {
			if c.N == 0 {
				return 0, nil
			}
			return 100 * float64(c.Dynamic) / float64(c.N), nil
		}
	}
	return 0, fmt.Errorf("pinscope: unknown dataset %q / platform %q", dataset, platform)
}

// Advice is one per-destination pinning recommendation for an app,
// derived from the study's measurements (ownership, sensitivity, current
// policy here and on the sibling platform).
type Advice struct {
	Host      string
	Pin       bool
	Strategy  string
	Mechanism string
	Rationale []string
	Warnings  []string
}

// AdviseApp returns pinning guidance for one studied app — the
// developer-guideline output the paper's discussion calls for (§5.7).
func (st *Study) AdviseApp(platform Platform, appID string) ([]Advice, error) {
	recs, err := st.s.AdviceByID(appmodel.Platform(platform), appID)
	if err != nil {
		return nil, err
	}
	out := make([]Advice, 0, len(recs))
	for _, r := range recs {
		out = append(out, Advice{
			Host:      r.Host,
			Pin:       r.Pin,
			Strategy:  r.Strategy.String(),
			Mechanism: r.Mechanism,
			Rationale: r.Rationale,
			Warnings:  r.Warnings,
		})
	}
	return out, nil
}

// ValidationReport renders the detector's confusion matrix against
// generator ground truth. This is simulation-only self-validation (the real
// study had no ground truth) and is therefore not part of FullReport.
func (st *Study) ValidationReport() string {
	return report.Quality(st.s)
}

// ExportDataset writes the study's shareable dataset (per-app verdicts and
// pinned-destination classifications) as JSON — the counterpart of the
// dataset the paper releases for reproducibility.
func (st *Study) ExportDataset(w io.Writer) error {
	return st.s.WriteJSON(w)
}

// SleepSweep reruns a sample of apps at the given capture windows and
// reports average handshake counts (§4.2.1).
func (st *Study) SleepSweep(windows []float64, sample int) (string, error) {
	points, err := core.SleepSweep(st.s.World, st.s.Cfg.Params.Seed, windows, sample)
	if err != nil {
		return "", err
	}
	return report.Sweep(points), nil
}

// Ablations reruns a sample of apps under degraded detector variants and
// reports the damage each ablation causes.
func (st *Study) Ablations(sample int) (string, error) {
	rows, err := core.RunAblations(st.s.World, st.s.Cfg.Params.Seed, sample)
	if err != nil {
		return "", err
	}
	return report.Ablations(rows), nil
}

// ChaosReport runs the full study once per fault rate (plus a fault-free
// reference) and renders how far the Table 3 dynamic prevalences drift as
// operational faults rise — the robustness envelope of the methodology.
// Positive-rate points additionally rerun as a 4-shard sharded study under
// a derived shard-death plan and verify the merged export matches. Each
// point is a complete study on a fresh world; budget accordingly.
func ChaosReport(cfg Config, rates []float64) (string, error) {
	points, err := core.ChaosSweep(cfg.toCore(), rates)
	if err != nil {
		return "", err
	}
	return report.Chaos(points), nil
}

// ShardOptions configures a sharded, crash-tolerant study run.
type ShardOptions struct {
	// Shards is the number of contiguous slices the app universe is cut
	// into; each slice journals into its own WAL under Dir.
	Shards int
	// Workers sizes the worker pool measuring the slices (0 → one per
	// shard). Workers hold slices under time-bounded leases: a dead
	// worker's lease expires and a survivor resumes its slice from the
	// journal instead of recomputing it.
	Workers int
	// Dir is the shard-journal directory (created if missing). Rerunning
	// over an interrupted run's directory resumes it.
	Dir string
	// Kills deterministically kills the worker holding a slice (for
	// crash-drill runs): slice index → results appended before the cut.
	Kills []ShardKill
	// KillTorn is the torn-frame length each injected kill leaves on disk.
	KillTorn int
	// NetChaosRate, for transported runs (RunShardedNet), derives a
	// seeded network fault plan — delayed, dropped, and duplicated
	// frames, plus partitions long enough to expire a lease — at this
	// rate on top of any explicit Kills. 0 injects nothing; the plan is
	// capped so at least one shard always makes progress. Ignored by
	// in-process and TCP runs (a real wire is not simulated).
	NetChaosRate float64
}

// ShardKill names one injected shard death: the holder of Slice dies while
// appending result AfterResults (0-based within the slice journal).
type ShardKill struct {
	Slice        int
	AfterResults int
}

func (o ShardOptions) plan(torn int) *faultinject.ShardPlan {
	if len(o.Kills) == 0 {
		return nil
	}
	p := &faultinject.ShardPlan{}
	for _, k := range o.Kills {
		p.Kills = append(p.Kills, faultinject.ShardKill{
			Slice: k.Slice, AfterResults: k.AfterResults, TornBytes: torn,
		})
	}
	return p
}

// ShardStats reports what a sharded run's coordinator observed.
type ShardStats struct {
	// Workers and Shards echo the run shape.
	Workers, Shards int
	// WorkersKilled counts injected shard deaths that fired.
	WorkersKilled int
	// LeasesExpired counts leases that timed out (dead or stalled holder);
	// Reassigned counts slices a second worker took over.
	LeasesExpired, Reassigned int
	// ResumedFrames counts results replayed from shard journals instead of
	// recomputed — on takeover within a run and on rerun of a killed run.
	ResumedFrames int
}

// RunSharded executes the study as opts.Shards crash-only slices under
// lease-based coordination, leaving one journal per slice in opts.Dir. It
// returns statistics, not a Study: fold the journals into the canonical
// dataset with MergeShards. If workers die (injected via opts.Kills or a
// real crash killing the process), rerunning with the same configuration
// resumes from the journals; MergeShards then produces a dataset
// byte-identical to an unsharded Run + ExportDataset of the same Config.
func RunSharded(cfg Config, opts ShardOptions) (*ShardStats, error) {
	cc := cfg.toCore()
	if cfg.JournalPath != "" || cfg.KillAfter > 0 {
		return nil, errors.New("pinscope: sharded runs journal per shard; JournalPath and KillAfter do not apply")
	}
	stats, err := core.RunSharded(cc, core.ShardedConfig{
		Shards:  opts.Shards,
		Workers: opts.Workers,
		Dir:     opts.Dir,
		Faults:  opts.plan(opts.KillTorn),
	})
	if stats == nil {
		return nil, err
	}
	return &ShardStats{
		Workers: stats.Workers, Shards: stats.Slices,
		WorkersKilled: stats.WorkersKilled,
		LeasesExpired: stats.Expired, Reassigned: stats.Reassigned,
		ResumedFrames: stats.ResumedFrames,
	}, err
}

// NetShardStats reports a transported sharded run: the shard accounting
// plus the transport's own counters.
type NetShardStats struct {
	ShardStats
	// Fenced counts zombie-epoch frames refused after a lease takeover;
	// Duplicates counts deliveries discarded as already journaled;
	// Reordered counts results buffered ahead of the slice cursor;
	// SendRetries counts coordinator send attempts beyond the first;
	// ConnDrops counts connections that died or were declared dead.
	Fenced, Duplicates, Reordered, SendRetries, ConnDrops int
}

func netShardStats(stats *core.NetShardStats) *NetShardStats {
	if stats == nil {
		return nil
	}
	return &NetShardStats{
		ShardStats: ShardStats{
			Workers: stats.Net.Workers, Shards: stats.Net.Slices,
			WorkersKilled: stats.WorkersKilled,
			LeasesExpired: stats.Net.Expired, Reassigned: stats.Net.Reassigned,
			ResumedFrames: stats.Net.ResumedFrames,
		},
		Fenced:      stats.Net.Fenced,
		Duplicates:  stats.Net.Duplicates,
		Reordered:   stats.Net.Reordered,
		SendRetries: stats.Net.SendRetries,
		ConnDrops:   stats.Net.ConnDrops,
	}
}

// netConfig renders the options for a transported run, deriving the
// seeded network fault plan when NetChaosRate is set: with no explicit
// kills the derived plan applies wholesale; with explicit kills only its
// network family rides along (mixing two kill sources could leave no
// surviving worker).
func (o ShardOptions) netConfig(cfg core.Config) (core.ShardedConfig, error) {
	sc := core.ShardedConfig{
		Shards:  o.Shards,
		Workers: o.Workers,
		Dir:     o.Dir,
		Faults:  o.plan(o.KillTorn),
	}
	if o.NetChaosRate > 0 {
		derived, err := core.DeriveNetPlan(cfg, sc, o.NetChaosRate)
		if err != nil {
			return sc, err
		}
		if sc.Faults == nil {
			sc.Faults = derived
		} else if derived != nil {
			sc.Faults.Net = derived.Net
		}
	}
	return sc, nil
}

// RunShardedNet executes the sharded study over the deterministic
// simulated network: the coordinator and its worker fleet exchange
// framed messages — heartbeats separated from result streams — through an
// in-process transport whose pathologies (delayed, dropped, and
// duplicated frames, partitions that outlive a lease) are seeded draws
// via ShardOptions.NetChaosRate. Lease takeover, epoch fencing, and
// backed-off sends recover from every injected fault; journals, resume
// semantics, and MergeShards byte-identity are exactly RunSharded's.
func RunShardedNet(cfg Config, opts ShardOptions) (*NetShardStats, error) {
	cc := cfg.toCore()
	if cfg.JournalPath != "" || cfg.KillAfter > 0 {
		return nil, errors.New("pinscope: sharded runs journal per shard; JournalPath and KillAfter do not apply")
	}
	sc, err := opts.netConfig(cc)
	if err != nil {
		return nil, err
	}
	stats, err := core.RunShardedNet(cc, sc)
	if stats == nil {
		return nil, err
	}
	return netShardStats(stats), err
}

// RunShardedTCP is RunShardedNet over real loopback TCP: the coordinator
// listens on 127.0.0.1, workers dial it, and every frame crosses an
// actual socket under the same CRC-checked framing the journals use.
// Network chaos is not injected — the wire is real — but injected worker
// kills still fire, leaving torn wire frames the framing must reject.
func RunShardedTCP(cfg Config, opts ShardOptions) (*NetShardStats, error) {
	cc := cfg.toCore()
	if cfg.JournalPath != "" || cfg.KillAfter > 0 {
		return nil, errors.New("pinscope: sharded runs journal per shard; JournalPath and KillAfter do not apply")
	}
	stats, err := core.RunShardedTCP(cc, core.ShardedConfig{
		Shards:  opts.Shards,
		Workers: opts.Workers,
		Dir:     opts.Dir,
		Faults:  opts.plan(opts.KillTorn),
	})
	if stats == nil {
		return nil, err
	}
	return netShardStats(stats), err
}

// ServeShards runs the coordinator half of a cross-machine sharded study:
// it listens on addr (host:port), ships each connecting worker the run's
// configuration, and returns once every slice is journaled under
// opts.Dir — merge them with MergeShards. It waits for workers rather
// than failing when none are connected, so workers may be started after,
// or restarted during, the run; an interrupted serve resumes from the
// journals like any sharded run.
func ServeShards(cfg Config, opts ShardOptions, addr string) (*NetShardStats, error) {
	cc := cfg.toCore()
	if cfg.JournalPath != "" || cfg.KillAfter > 0 {
		return nil, errors.New("pinscope: sharded runs journal per shard; JournalPath and KillAfter do not apply")
	}
	stats, err := core.ServeShards(cc, core.ShardedConfig{
		Shards:  opts.Shards,
		Workers: opts.Workers,
		Dir:     opts.Dir,
	}, addr)
	if stats == nil {
		return nil, err
	}
	return netShardStats(stats), err
}

// ConnectShardWorker runs the worker half of a cross-machine sharded
// study: it dials the coordinator at addr, rebuilds the measurement bench
// from the run configuration it is handed (seed and parameters cross the
// wire, never data), and works granted slices until the coordinator
// reports the run done. scope labels this worker in backoff derivations
// so two workers never jitter in lockstep.
func ConnectShardWorker(addr, scope string) error {
	return core.ConnectShardWorker(addr, scope)
}

// TimelineOptions configures a longitudinal run: the same app universe
// replayed "as of" each selected root-program timeline point (platform
// releases and distrust events — see internal/rootprogram).
type TimelineOptions struct {
	// Points selects timeline point tags (releases like "froyo" or
	// "kitkat", distrust events like "distrust-ca-distrust"); empty means
	// every point. Tags resolve to timeline order regardless of input
	// order.
	Points []string
	// Dir, when set, makes the sweep crash-only: each point journals into
	// Dir/point-<tag>.wal, and rerunning over the directory resumes a
	// killed sweep — completed points replay, the interrupted point
	// resumes mid-journal. Per-point exports are byte-identical to an
	// uninterrupted sweep's.
	Dir string
	// KillAtPoint arms Config.KillAfter for only the named point, so a
	// crash drill can cut the sweep mid-timeline after earlier points
	// completed. Empty arms it everywhere.
	KillAtPoint string
}

// TimelineStudy is a completed longitudinal sweep: one Study per measured
// timeline point, plus the time-axis aggregates over them.
type TimelineStudy struct {
	ls *core.LongitudinalStudy
}

// RunTimeline executes the longitudinal study mode. The world is built
// once; each point then re-measures every app against the root stores in
// force at that point (release stores minus roots distrusted by then).
func RunTimeline(cfg Config, opts TimelineOptions) (*TimelineStudy, error) {
	if cfg.JournalPath != "" {
		return nil, errors.New("pinscope: timeline runs journal per point; use TimelineOptions.Dir, not JournalPath")
	}
	ls, err := core.RunLongitudinal(cfg.toCore(), core.TimelineConfig{
		Points: opts.Points, Dir: opts.Dir, KillAtPoint: opts.KillAtPoint,
	})
	if err != nil {
		return nil, err
	}
	return &TimelineStudy{ls: ls}, nil
}

// Points lists the measured timeline point tags in timeline order.
func (ts *TimelineStudy) Points() []string {
	out := make([]string, 0, len(ts.ls.Points))
	for _, p := range ts.ls.Points {
		out = append(out, p.Point.Tag)
	}
	return out
}

// Resumed reports how many results across all points were replayed from
// point journals rather than measured by this process.
func (ts *TimelineStudy) Resumed() int {
	n := 0
	for _, p := range ts.ls.Points {
		n += p.Study.Resumed
	}
	return n
}

// Report renders the full time-axis report: the timeline itself, Table 3
// over time, per-point breakage, and the transition deltas.
func (ts *TimelineStudy) Report() string { return report.Longitudinal(ts.ls) }

// ExportPoint writes one point's dataset as JSON — the standard snapshot
// shape with Meta.Release stamped to the point tag, loadable by pinserve
// for distrust-impact queries.
func (ts *TimelineStudy) ExportPoint(w io.Writer, tag string) error {
	return ts.ls.ExportPoint(w, tag)
}

// PointStudy returns one timeline point's completed study, or an error
// for an unmeasured tag.
func (ts *TimelineStudy) PointStudy(tag string) (*Study, error) {
	p := ts.ls.Result(tag)
	if p == nil {
		return nil, fmt.Errorf("pinscope: no measured timeline point %q", tag)
	}
	return &Study{s: p.Study}, nil
}

// MergeShards streams a completed sharded run's journals into one exported
// dataset, byte-identical to the unsharded export of the same Config. The
// merge is bounded-memory — one journal frame in flight at a time — and
// fails loudly (without emitting a partial dataset) if any shard journal is
// incomplete, corrupt, or from a different run.
func MergeShards(w io.Writer, cfg Config, opts ShardOptions) error {
	return core.MergeShards(w, cfg.toCore(), core.ShardedConfig{
		Shards: opts.Shards,
		Dir:    opts.Dir,
	})
}
